package mil

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/bat"
)

func oidIntBAT(name string, heads []bat.OID, tails []int64, props bat.Props) *bat.BAT {
	return bat.New(name, bat.NewOIDCol(heads), bat.NewIntCol(tails), props)
}

func tailsInt(b *bat.BAT) []int64 {
	out := make([]int64, b.Len())
	for i := range out {
		out[i] = b.TailValue(i).I
	}
	return out
}

func headsOID(b *bat.BAT) []bat.OID {
	out := make([]bat.OID, b.Len())
	for i := range out {
		out[i] = b.HeadValue(i).OID()
	}
	return out
}

// --- select ---------------------------------------------------------------

func TestSelectEqScanAndBinsearchAgree(t *testing.T) {
	heads := []bat.OID{10, 11, 12, 13, 14, 15}
	tails := []int64{5, 3, 5, 9, 1, 5}
	unsorted := oidIntBAT("u", heads, tails, 0)
	ctx := &Ctx{}
	scan := SelectEq(ctx, unsorted, bat.I(5))
	if ctx.LastAlgo() != "scan-select" {
		t.Fatalf("algo = %s", ctx.LastAlgo())
	}
	if got := headsOID(scan); len(got) != 3 || got[0] != 10 || got[1] != 12 || got[2] != 15 {
		t.Fatalf("scan heads = %v", got)
	}

	sorted := bat.SortOnTail(unsorted)
	bs := SelectEq(ctx, sorted, bat.I(5))
	if ctx.LastAlgo() != "binsearch-select" {
		t.Fatalf("algo = %s", ctx.LastAlgo())
	}
	a, b := headsOID(scan), headsOID(bs)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan %v != binsearch %v", a, b)
		}
	}
}

func TestSelectEqUsesExistingHash(t *testing.T) {
	b := oidIntBAT("u", []bat.OID{1, 2, 3}, []int64{7, 8, 7}, 0)
	b.TailHash() // pre-built accelerator
	ctx := &Ctx{}
	out := SelectEq(ctx, b, bat.I(7))
	if ctx.LastAlgo() != "hash-select" {
		t.Fatalf("algo = %s", ctx.LastAlgo())
	}
	if out.Len() != 2 {
		t.Fatalf("len = %d", out.Len())
	}
}

func TestSelectRangeBounds(t *testing.T) {
	b := oidIntBAT("x", []bat.OID{0, 1, 2, 3, 4}, []int64{10, 20, 30, 40, 50}, 0)
	cases := []struct {
		lo, hi         *bat.Value
		loIncl, hiIncl bool
		want           []int64
	}{
		{ptr(bat.I(20)), ptr(bat.I(40)), true, true, []int64{20, 30, 40}},
		{ptr(bat.I(20)), ptr(bat.I(40)), false, true, []int64{30, 40}},
		{ptr(bat.I(20)), ptr(bat.I(40)), true, false, []int64{20, 30}},
		{ptr(bat.I(20)), ptr(bat.I(40)), false, false, []int64{30}},
		{nil, ptr(bat.I(25)), true, true, []int64{10, 20}},
		{ptr(bat.I(35)), nil, true, true, []int64{40, 50}},
		{nil, nil, true, true, []int64{10, 20, 30, 40, 50}},
		{ptr(bat.I(60)), nil, true, true, nil},
	}
	for ci, c := range cases {
		for _, sorted := range []bool{false, true} {
			in := b
			if sorted {
				in = bat.SortOnTail(b)
			}
			got := tailsInt(SelectRange(nil, in, c.lo, c.hi, c.loIncl, c.hiIncl))
			if len(got) != len(c.want) {
				t.Fatalf("case %d sorted=%v: got %v want %v", ci, sorted, got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("case %d sorted=%v: got %v want %v", ci, sorted, got, c.want)
				}
			}
		}
	}
}

func ptr(v bat.Value) *bat.Value { return &v }

func TestSelectPreservesProps(t *testing.T) {
	b := oidIntBAT("x", []bat.OID{1, 2, 3, 4}, []int64{10, 20, 30, 40}, bat.HOrdered|bat.HKey|bat.TOrdered|bat.TKey)
	out := SelectRange(nil, b, ptr(bat.I(15)), ptr(bat.I(35)), true, true)
	if !out.Props.Has(bat.HOrdered | bat.HKey | bat.TOrdered | bat.TKey) {
		t.Fatalf("props = %s", out.Props)
	}
	if err := out.CheckProps(); err != nil {
		t.Fatal(err)
	}
}

func TestSelectBit(t *testing.T) {
	b := bat.New("p", bat.NewOIDCol([]bat.OID{1, 2, 3}), bat.NewBitCol([]bool{true, false, true}), 0)
	out := SelectBit(nil, b)
	if got := headsOID(out); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("heads = %v", got)
	}
}

func TestSelectOnStrings(t *testing.T) {
	b := bat.New("s", bat.NewOIDCol([]bat.OID{1, 2, 3}),
		bat.NewStrColFromStrings([]string{"BUILDING", "MACHINERY", "BUILDING"}), 0)
	out := SelectEq(nil, b, bat.S("BUILDING"))
	if out.Len() != 2 {
		t.Fatalf("len = %d", out.Len())
	}
}

func TestSelectOnFloatsCharsDates(t *testing.T) {
	fb := bat.New("f", bat.NewOIDCol([]bat.OID{1, 2, 3}), bat.NewFltCol([]float64{0.05, 0.06, 0.07}), 0)
	if got := SelectRange(nil, fb, ptr(bat.F(0.05)), ptr(bat.F(0.06)), true, true); got.Len() != 2 {
		t.Fatalf("flt len = %d", got.Len())
	}
	cb := bat.New("c", bat.NewOIDCol([]bat.OID{1, 2}), bat.NewChrCol([]byte{'R', 'N'}), 0)
	if got := SelectEq(nil, cb, bat.C('R')); got.Len() != 1 {
		t.Fatalf("chr len = %d", got.Len())
	}
	db := bat.New("d", bat.NewOIDCol([]bat.OID{1, 2, 3}),
		bat.NewDateCol([]int32{8000, 9000, 10000}), 0)
	if got := SelectRange(nil, db, ptr(bat.D(8500)), nil, true, true); got.Len() != 2 {
		t.Fatalf("date len = %d", got.Len())
	}
}

// Property: select(eq) on sorted and unsorted layouts returns the same BUN
// multiset.
func TestSelectEqSortedUnsortedEquivalent(t *testing.T) {
	f := func(tails []int64, pick int64) bool {
		if len(tails) == 0 {
			return true
		}
		needle := tails[abs(int(pick))%len(tails)] % 10
		for i := range tails {
			tails[i] %= 10
		}
		heads := make([]bat.OID, len(tails))
		for i := range heads {
			heads[i] = bat.OID(i)
		}
		u := oidIntBAT("u", heads, tails, 0)
		s := bat.SortOnTail(u)
		a := headsOID(SelectEq(nil, u, bat.I(needle)))
		b := headsOID(SelectEq(nil, s, bat.I(needle)))
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// --- semijoin ---------------------------------------------------------------

func semijoinBrute(l, r *bat.BAT) map[bat.OID]int {
	set := map[bat.Value]bool{}
	for i := 0; i < r.Len(); i++ {
		set[r.HeadValue(i)] = true
	}
	out := map[bat.OID]int{}
	for i := 0; i < l.Len(); i++ {
		if set[l.HeadValue(i)] {
			out[l.HeadValue(i).OID()]++
		}
	}
	return out
}

func TestSemijoinVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lh := make([]bat.OID, 200)
	lt := make([]int64, 200)
	for i := range lh {
		lh[i] = bat.OID(i)
		lt[i] = rng.Int63n(50)
	}
	rh := make([]bat.OID, 60)
	for i := range rh {
		rh[i] = bat.OID(rng.Intn(250)) // some misses
	}
	rh = dedupeOIDs(rh)
	r := bat.New("r", bat.NewOIDCol(rh), bat.NewVoid(0, len(rh)), bat.HKey)

	// hash variant: unsorted left
	lUnsorted := oidIntBAT("l", shuffleOIDs(rng, lh), lt, 0)
	ctx := &Ctx{}
	hres := Semijoin(ctx, lUnsorted, r)
	if ctx.LastAlgo() != "hash-semijoin" {
		t.Fatalf("algo = %s", ctx.LastAlgo())
	}
	want := semijoinBrute(lUnsorted, r)
	checkSemijoin(t, "hash", hres, want)

	// merge variant: both ordered
	lSorted := oidIntBAT("l", lh, lt, bat.HOrdered|bat.HKey)
	rSorted := SortTail(nil, bat.New("rs", bat.NewVoid(0, len(rh)), bat.NewOIDCol(rh), 0), false).Mirror()
	ctx = &Ctx{}
	mres := Semijoin(ctx, lSorted, rSorted)
	if ctx.LastAlgo() != "merge-semijoin" {
		t.Fatalf("algo = %s", ctx.LastAlgo())
	}
	checkSemijoin(t, "merge", mres, semijoinBrute(lSorted, rSorted))

	// datavector variant
	attr := bat.New("attr", bat.NewVoid(0, 200), bat.NewIntCol(lt), 0)
	dvBAT := bat.AttachDatavector(attr)
	ctx = &Ctx{}
	dres := Semijoin(ctx, dvBAT, r)
	if ctx.LastAlgo() != "datavector-semijoin" {
		t.Fatalf("algo = %s", ctx.LastAlgo())
	}
	checkSemijoin(t, "datavector", dres, semijoinBrute(dvBAT, r))

	// values must match the original attribute
	for i := 0; i < dres.Len(); i++ {
		oid := dres.HeadValue(i).OID()
		if got, want := dres.TailValue(i).I, lt[int(oid)]; got != want {
			t.Fatalf("datavector value for oid %d = %d, want %d", oid, got, want)
		}
	}
}

func checkSemijoin(t *testing.T, label string, got *bat.BAT, want map[bat.OID]int) {
	t.Helper()
	have := map[bat.OID]int{}
	for i := 0; i < got.Len(); i++ {
		have[got.HeadValue(i).OID()]++
	}
	if len(have) != len(want) {
		t.Fatalf("%s: %d distinct heads, want %d", label, len(have), len(want))
	}
	for k, c := range want {
		if have[k] != c {
			t.Fatalf("%s: head %d count %d, want %d", label, k, have[k], c)
		}
	}
}

func dedupeOIDs(in []bat.OID) []bat.OID {
	seen := map[bat.OID]bool{}
	var out []bat.OID
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func shuffleOIDs(rng *rand.Rand, in []bat.OID) []bat.OID {
	out := append([]bat.OID(nil), in...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func TestSyncSemijoinReturnsLeft(t *testing.T) {
	l := oidIntBAT("l", []bat.OID{5, 6, 7}, []int64{1, 2, 3}, 0)
	r := bat.New("r", bat.NewOIDCol([]bat.OID{5, 6, 7}), bat.NewFltCol([]float64{9, 9, 9}), 0)
	r.SyncWith(l)
	ctx := &Ctx{}
	out := Semijoin(ctx, l, r)
	if ctx.LastAlgo() != "sync-semijoin" {
		t.Fatalf("algo = %s", ctx.LastAlgo())
	}
	if out.Len() != 3 {
		t.Fatalf("len = %d", out.Len())
	}
	if !bat.Synced(out, l) {
		t.Fatal("result must stay synced with left operand")
	}
}

func TestDatavectorSemijoinMemoReuse(t *testing.T) {
	attr1 := bat.AttachDatavector(bat.New("a1", bat.NewVoid(0, 100), mkInts(100, 1), 0))
	attr2 := bat.AttachDatavector(bat.New("a2", bat.NewVoid(0, 100), mkInts(100, 2), 0))
	r := bat.New("sel", bat.NewOIDCol([]bat.OID{3, 50, 99}), bat.NewVoid(0, 3), bat.HKey)

	ctx := &Ctx{}
	out1 := Semijoin(ctx, attr1, r)
	if attr1.Datavector().Lookup(r) == nil {
		t.Fatal("first semijoin must memoize LOOKUP")
	}
	out2 := Semijoin(ctx, attr1, r) // second: reuses memo
	if out1.Len() != 3 || out2.Len() != 3 {
		t.Fatalf("lens = %d, %d", out1.Len(), out2.Len())
	}
	// Fully-matched datavector semijoins against the same selection are
	// synced (Fig. 10: prices and discount).
	o1 := Semijoin(ctx, attr1, r)
	o2 := Semijoin(ctx, attr2, r)
	if !bat.Synced(o1, o2) {
		t.Fatal("full-match datavector semijoins with same right operand must be synced")
	}
}

func mkInts(n int, mul int64) *bat.IntCol {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(i) * mul
	}
	return bat.NewIntCol(v)
}

// Property: semijoin result of every variant equals the brute-force filter.
func TestSemijoinMatchesBruteForce(t *testing.T) {
	f := func(lheads []uint16, rheads []uint16) bool {
		lh := make([]bat.OID, len(lheads))
		lt := make([]int64, len(lheads))
		for i, v := range lheads {
			lh[i] = bat.OID(v % 64)
			lt[i] = int64(i)
		}
		rh := make([]bat.OID, len(rheads))
		for i, v := range rheads {
			rh[i] = bat.OID(v % 64)
		}
		l := oidIntBAT("l", lh, lt, 0)
		r := bat.New("r", bat.NewOIDCol(rh), bat.NewVoid(0, len(rh)), 0)
		got := Semijoin(nil, l, r)
		want := semijoinBrute(l, r)
		total := 0
		for _, c := range want {
			total += c
		}
		if got.Len() != total {
			return false
		}
		have := map[bat.OID]int{}
		for i := 0; i < got.Len(); i++ {
			have[got.HeadValue(i).OID()]++
		}
		for k, c := range want {
			if have[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- join -------------------------------------------------------------------

func joinBrute(l, r *bat.BAT) map[[2]int64]int {
	out := map[[2]int64]int{}
	for i := 0; i < l.Len(); i++ {
		for j := 0; j < r.Len(); j++ {
			if bat.Equal(l.TailValue(i), r.HeadValue(j)) {
				out[[2]int64{l.HeadValue(i).I, r.TailValue(j).I}]++
			}
		}
	}
	return out
}

func checkJoin(t *testing.T, label string, got *bat.BAT, want map[[2]int64]int) {
	t.Helper()
	have := map[[2]int64]int{}
	for i := 0; i < got.Len(); i++ {
		have[[2]int64{got.HeadValue(i).I, got.TailValue(i).I}]++
	}
	if len(have) != len(want) {
		t.Fatalf("%s: have %v want %v", label, have, want)
	}
	for k, c := range want {
		if have[k] != c {
			t.Fatalf("%s: pair %v count %d want %d", label, k, have[k], c)
		}
	}
}

func TestJoinVariantsAgree(t *testing.T) {
	// l[a(oid), b(oid)] joins r[c(oid), d(int)]
	lh := []bat.OID{100, 101, 102, 103, 104}
	lt := []bat.OID{2, 0, 2, 9, 1} // 9 misses
	l := bat.New("l", bat.NewOIDCol(lh), bat.NewOIDCol(lt), 0)

	// fetch-join: dense right head
	rDense := bat.New("r", bat.NewVoid(0, 4), bat.NewIntCol([]int64{10, 11, 12, 13}), 0)
	ctx := &Ctx{}
	fres := Join(ctx, l, rDense)
	if ctx.LastAlgo() != "fetch-join" {
		t.Fatalf("algo = %s", ctx.LastAlgo())
	}
	want := joinBrute(l, rDense)
	checkJoin(t, "fetch", fres, want)

	// hash-join: sparse unsorted right head
	rSparse := bat.New("r", bat.NewOIDCol([]bat.OID{2, 0, 3, 1}), bat.NewIntCol([]int64{12, 10, 13, 11}), 0)
	ctx = &Ctx{}
	hres := Join(ctx, l, rSparse)
	if ctx.LastAlgo() != "hash-join" {
		t.Fatalf("algo = %s", ctx.LastAlgo())
	}
	checkJoin(t, "hash", hres, joinBrute(l, rSparse))

	// merge-join: l tail-ordered, r head-ordered (but not dense)
	lSorted := bat.SortOnTail(l)
	rMerge := bat.New("r", bat.NewOIDCol([]bat.OID{0, 1, 2, 3}), bat.NewIntCol([]int64{10, 11, 12, 13}), bat.HOrdered|bat.HKey)
	// strip density so the dispatcher picks merge
	ctx = &Ctx{}
	mres := Join(ctx, lSorted, rMerge)
	if ctx.LastAlgo() != "merge-join" {
		t.Fatalf("algo = %s", ctx.LastAlgo())
	}
	checkJoin(t, "merge", mres, joinBrute(lSorted, rMerge))
}

func TestMergeJoinDuplicates(t *testing.T) {
	l := bat.New("l", bat.NewOIDCol([]bat.OID{1, 2, 3}), bat.NewOIDCol([]bat.OID{5, 5, 6}), bat.TOrdered)
	r := bat.New("r", bat.NewOIDCol([]bat.OID{5, 5, 6}), bat.NewIntCol([]int64{50, 51, 60}), bat.HOrdered)
	ctx := &Ctx{}
	out := Join(ctx, l, r)
	if ctx.LastAlgo() != "merge-join" {
		t.Fatalf("algo = %s", ctx.LastAlgo())
	}
	checkJoin(t, "merge-dup", out, joinBrute(l, r))
	if out.Len() != 5 { // 2*2 for key 5 + 1 for key 6
		t.Fatalf("len = %d, want 5", out.Len())
	}
}

// Property: hash join equals brute-force nested loop.
func TestJoinMatchesBruteForce(t *testing.T) {
	f := func(ltails, rheads []uint8) bool {
		lt := make([]bat.OID, len(ltails))
		lh := make([]bat.OID, len(ltails))
		for i, v := range ltails {
			lh[i] = bat.OID(i + 1000)
			lt[i] = bat.OID(v % 16)
		}
		rh := make([]bat.OID, len(rheads))
		rt := make([]int64, len(rheads))
		for i, v := range rheads {
			rh[i] = bat.OID(v % 16)
			rt[i] = int64(i)
		}
		l := bat.New("l", bat.NewOIDCol(lh), bat.NewOIDCol(lt), 0)
		r := bat.New("r", bat.NewOIDCol(rh), bat.NewIntCol(rt), 0)
		got := Join(nil, l, r)
		want := joinBrute(l, r)
		total := 0
		for _, c := range want {
			total += c
		}
		if got.Len() != total {
			return false
		}
		have := map[[2]int64]int{}
		for i := 0; i < got.Len(); i++ {
			have[[2]int64{got.HeadValue(i).I, got.TailValue(i).I}]++
		}
		for k, c := range want {
			if have[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinMulti(t *testing.T) {
	// left: 3 elements keyed (supplier, part)
	lk1 := bat.New("lk1", bat.NewVoid(0, 3), bat.NewOIDCol([]bat.OID{1, 1, 2}), 0)
	lk2 := bat.New("lk2", bat.NewVoid(0, 3), bat.NewOIDCol([]bat.OID{10, 11, 10}), 0)
	// right: 2 elements keyed (supplier, part)
	rk1 := bat.New("rk1", bat.NewVoid(0, 2), bat.NewOIDCol([]bat.OID{1, 2}), 0)
	rk2 := bat.New("rk2", bat.NewVoid(0, 2), bat.NewOIDCol([]bat.OID{11, 10}), 0)
	lids, rids := JoinMulti(nil, []*bat.BAT{lk1, lk2}, []*bat.BAT{rk1, rk2})
	if len(lids) != 2 {
		t.Fatalf("matches = %d, want 2", len(lids))
	}
	// element ids: (1,11) at lid=1 matches rid=0; (2,10) at lid=2 matches rid=1
	found := map[[2]int64]bool{}
	for i := range lids {
		found[[2]int64{lids[i].I, rids[i].I}] = true
	}
	if !found[[2]int64{1, 0}] || !found[[2]int64{2, 1}] {
		t.Fatalf("pairs = %v/%v", lids, rids)
	}
}

func TestJoinMultiAlignsKeysOnHeads(t *testing.T) {
	// second key BAT stored in a different physical order than the first:
	// matching must go through head ids, not positions.
	lk1 := bat.New("lk1", bat.NewOIDCol([]bat.OID{7, 8}), bat.NewIntCol([]int64{1, 2}), 0)
	lk2 := bat.New("lk2", bat.NewOIDCol([]bat.OID{8, 7}), bat.NewIntCol([]int64{20, 10}), 0)
	rk1 := bat.New("rk1", bat.NewOIDCol([]bat.OID{100}), bat.NewIntCol([]int64{2}), 0)
	rk2 := bat.New("rk2", bat.NewOIDCol([]bat.OID{100}), bat.NewIntCol([]int64{20}), 0)
	lids, rids := JoinMulti(nil, []*bat.BAT{lk1, lk2}, []*bat.BAT{rk1, rk2})
	if len(lids) != 1 || lids[0].I != 8 || rids[0].I != 100 {
		t.Fatalf("pairs = %v/%v, want [8]/[100]", lids, rids)
	}
	// element 9 on the left has no second key: dropped, not misjoined
	lk3 := bat.New("lk3", bat.NewOIDCol([]bat.OID{9}), bat.NewIntCol([]int64{2}), 0)
	lids, _ = JoinMulti(nil, []*bat.BAT{lk3, lk2}, []*bat.BAT{rk1, rk2})
	if len(lids) != 0 {
		t.Fatalf("missing-key element joined: %v", lids)
	}
}

// --- unique / group ---------------------------------------------------------

func TestUnique(t *testing.T) {
	b := oidIntBAT("x", []bat.OID{1, 1, 2, 1}, []int64{5, 5, 5, 6}, 0)
	out := Unique(nil, b)
	if out.Len() != 3 {
		t.Fatalf("len = %d, want 3", out.Len())
	}
}

func TestGroupUnary(t *testing.T) {
	b := oidIntBAT("years", []bat.OID{1, 2, 3, 4, 5}, []int64{1994, 1995, 1994, 1996, 1995}, 0)
	g := GroupUnary(nil, b)
	if g.Len() != b.Len() {
		t.Fatalf("group result must keep operand length")
	}
	if !bat.Synced(g, b) {
		t.Fatal("group result must be synced with operand")
	}
	// same year -> same group oid; different year -> different
	ids := tailsGroup(g)
	if ids[0] != ids[2] || ids[1] != ids[4] {
		t.Fatalf("equal values must share group: %v", ids)
	}
	if ids[0] == ids[1] || ids[0] == ids[3] || ids[1] == ids[3] {
		t.Fatalf("distinct values must not share group: %v", ids)
	}
}

func tailsGroup(b *bat.BAT) []bat.OID {
	out := make([]bat.OID, b.Len())
	for i := range out {
		out[i] = b.TailValue(i).OID()
	}
	return out
}

func TestGroupBinaryRefines(t *testing.T) {
	// group on returnflag then refine by linestatus
	flags := bat.New("f", bat.NewVoid(0, 6), bat.NewChrCol([]byte{'A', 'A', 'N', 'N', 'R', 'R'}), 0)
	status := bat.New("s", bat.NewVoid(0, 6), bat.NewChrCol([]byte{'F', 'O', 'F', 'F', 'O', 'O'}), 0)
	g1 := GroupUnary(nil, flags)
	g2 := GroupBinary(nil, g1, status)
	ids := tailsGroup(g2)
	// (A,F),(A,O),(N,F),(N,F),(R,O),(R,O) -> 4 groups; rows 2,3 equal; 4,5 equal
	if ids[2] != ids[3] || ids[4] != ids[5] {
		t.Fatalf("refinement wrong: %v", ids)
	}
	distinct := map[bat.OID]bool{}
	for _, id := range ids {
		distinct[id] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("distinct groups = %d, want 4", len(distinct))
	}
}

// Property: unary group assigns equal oids iff tail values are equal.
func TestGroupPartitionProperty(t *testing.T) {
	f := func(vals []int8) bool {
		tails := make([]int64, len(vals))
		for i, v := range vals {
			tails[i] = int64(v % 8)
		}
		heads := make([]bat.OID, len(vals))
		for i := range heads {
			heads[i] = bat.OID(i)
		}
		b := oidIntBAT("b", heads, tails, 0)
		g := GroupUnary(nil, b)
		ids := tailsGroup(g)
		for i := range ids {
			for j := range ids {
				if (tails[i] == tails[j]) != (ids[i] == ids[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- multiplex ----------------------------------------------------------------

func TestMultiplexAligned(t *testing.T) {
	price := bat.New("p", bat.NewVoid(0, 3), bat.NewFltCol([]float64{100, 200, 300}), 0)
	disc := bat.New("d", bat.NewVoid(0, 3), bat.NewFltCol([]float64{0.1, 0.2, 0.3}), 0)
	ctx := &Ctx{}
	factor := Multiplex(ctx, "-", []Operand{ConstArg(bat.F(1.0)), BATArg(disc)})
	if ctx.LastAlgo() != "aligned-multiplex" {
		t.Fatalf("algo = %s", ctx.LastAlgo())
	}
	rev := Multiplex(ctx, "*", []Operand{BATArg(price), BATArg(factor)})
	want := []float64{90, 160, 210}
	for i, w := range want {
		if got := rev.TailValue(i).F; got < w-1e-9 || got > w+1e-9 {
			t.Fatalf("rev[%d] = %v, want %v", i, got, w)
		}
	}
	if !bat.Synced(rev, price) {
		t.Fatal("aligned multiplex result must be synced with its first operand")
	}
}

func TestMultiplexHashAlignsOnHeads(t *testing.T) {
	a := bat.New("a", bat.NewOIDCol([]bat.OID{1, 2, 3}), bat.NewIntCol([]int64{10, 20, 30}), 0)
	b := bat.New("b", bat.NewOIDCol([]bat.OID{3, 1}), bat.NewIntCol([]int64{300, 100}), 0)
	ctx := &Ctx{}
	out := Multiplex(ctx, "+", []Operand{BATArg(a), BATArg(b)})
	if ctx.LastAlgo() != "hash-multiplex" {
		t.Fatalf("algo = %s", ctx.LastAlgo())
	}
	// head 2 has no partner: dropped (natural join)
	if out.Len() != 2 {
		t.Fatalf("len = %d, want 2", out.Len())
	}
	got := map[int64]int64{}
	for i := 0; i < out.Len(); i++ {
		got[out.HeadValue(i).I] = out.TailValue(i).I
	}
	if got[1] != 110 || got[3] != 330 {
		t.Fatalf("out = %v", got)
	}
}

func TestMultiplexYearAndComparisons(t *testing.T) {
	d := bat.New("d", bat.NewVoid(0, 2),
		bat.NewDateCol([]int32{int32(bat.MustDate("1994-03-15").I), int32(bat.MustDate("1995-07-01").I)}), 0)
	years := Multiplex(nil, "year", []Operand{BATArg(d)})
	if years.TailValue(0).I != 1994 || years.TailValue(1).I != 1995 {
		t.Fatalf("years = %v", years.TailValues())
	}
	lt := Multiplex(nil, "<", []Operand{BATArg(years), ConstArg(bat.I(1995))})
	if !lt.TailValue(0).Bool() || lt.TailValue(1).Bool() {
		t.Fatalf("compare wrong: %v", lt.TailValues())
	}
}

func TestMultiplexIfAndStringFuncs(t *testing.T) {
	ty := bat.New("t", bat.NewVoid(0, 3),
		bat.NewStrColFromStrings([]string{"PROMO BRUSHED", "STANDARD", "PROMO POLISHED"}), 0)
	isPromo := Multiplex(nil, "strstarts", []Operand{BATArg(ty), ConstArg(bat.S("PROMO"))})
	rev := bat.New("r", bat.NewVoid(0, 3), bat.NewFltCol([]float64{10, 20, 30}), 0)
	cond := Multiplex(nil, "if", []Operand{BATArg(isPromo), BATArg(rev), ConstArg(bat.F(0))})
	want := []float64{10, 0, 30}
	for i, w := range want {
		if got := cond.TailValue(i).AsFloat(); got != w {
			t.Fatalf("cond[%d] = %v, want %v", i, got, w)
		}
	}
}

// --- aggregates -----------------------------------------------------------------

func TestAggrAllFunctions(t *testing.T) {
	b := bat.New("g", bat.NewOIDCol([]bat.OID{1, 1, 2, 2, 2}),
		bat.NewFltCol([]float64{10, 20, 5, 15, 10}), 0)
	check := func(fn string, want map[bat.OID]float64) {
		t.Helper()
		out := Aggr(nil, fn, b)
		if out.Len() != 2 {
			t.Fatalf("%s len = %d", fn, out.Len())
		}
		for i := 0; i < out.Len(); i++ {
			h := out.HeadValue(i).OID()
			if got := out.TailValue(i).AsFloat(); got != want[h] {
				t.Fatalf("{%s}[%d] = %v, want %v", fn, h, got, want[h])
			}
		}
		if !out.Props.Has(bat.HKey) {
			t.Fatalf("{%s} result head must be key", fn)
		}
	}
	check("sum", map[bat.OID]float64{1: 30, 2: 30})
	check("count", map[bat.OID]float64{1: 2, 2: 3})
	check("avg", map[bat.OID]float64{1: 15, 2: 10})
	check("min", map[bat.OID]float64{1: 10, 2: 5})
	check("max", map[bat.OID]float64{1: 20, 2: 15})
}

func TestAggrOrderedFastPath(t *testing.T) {
	b := bat.New("g", bat.NewOIDCol([]bat.OID{1, 1, 2, 3, 3}),
		bat.NewIntCol([]int64{1, 2, 3, 4, 5}), bat.HOrdered)
	ctx := &Ctx{}
	out := Aggr(ctx, "sum", b)
	if ctx.LastAlgo() != "ordered-aggr" {
		t.Fatalf("algo = %s", ctx.LastAlgo())
	}
	want := map[bat.OID]int64{1: 3, 2: 3, 3: 9}
	for i := 0; i < out.Len(); i++ {
		if got := out.TailValue(i).I; got != want[out.HeadValue(i).OID()] {
			t.Fatalf("sum[%d] = %d", out.HeadValue(i).OID(), got)
		}
	}
	if !out.Props.Has(bat.HOrdered) {
		t.Fatal("ordered input must give ordered aggregate")
	}
}

// Property: ordered and hash aggregation agree.
func TestAggrOrderedHashAgree(t *testing.T) {
	f := func(raw []uint8) bool {
		n := len(raw)
		heads := make([]bat.OID, n)
		tails := make([]int64, n)
		for i, v := range raw {
			heads[i] = bat.OID(v % 5)
			tails[i] = int64(v)
		}
		sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
		ordered := oidIntBAT("o", heads, tails, bat.HOrdered)
		hashed := oidIntBAT("h", heads, tails, 0)
		a := Aggr(nil, "sum", ordered)
		b := Aggr(nil, "sum", hashed)
		if a.Len() != b.Len() {
			return false
		}
		am := map[bat.OID]int64{}
		bm := map[bat.OID]int64{}
		for i := 0; i < a.Len(); i++ {
			am[a.HeadValue(i).OID()] = a.TailValue(i).I
			bm[b.HeadValue(i).OID()] = b.TailValue(i).I
		}
		for k, v := range am {
			if bm[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAggrScalar(t *testing.T) {
	b := bat.New("x", bat.NewOIDCol([]bat.OID{1, 2, 3}), bat.NewFltCol([]float64{1.5, 2.5, 6}), 0)
	out := AggrScalar(nil, "sum", b)
	if out.Len() != 1 {
		t.Fatalf("len = %d", out.Len())
	}
	if got := ScalarOf(out); got.F != 10 {
		t.Fatalf("sum = %v", got)
	}
	if got := ScalarOf(AggrScalar(nil, "count", b)); got.I != 3 {
		t.Fatalf("count = %v", got)
	}
	empty := bat.New("e", bat.NewOIDCol(nil), bat.NewFltCol(nil), 0)
	if got := ScalarOf(AggrScalar(nil, "sum", empty)); got.F != 0 {
		t.Fatalf("empty sum = %v", got)
	}
}

// --- set operations -----------------------------------------------------------

func TestUnionDiffIntersect(t *testing.T) {
	a := oidIntBAT("a", []bat.OID{1, 2, 3}, []int64{10, 20, 30}, 0)
	b := oidIntBAT("b", []bat.OID{3, 4}, []int64{30, 40}, 0)
	u := Union(nil, a, b)
	if u.Len() != 4 {
		t.Fatalf("union len = %d", u.Len())
	}
	d := Diff(nil, a, b)
	if d.Len() != 2 {
		t.Fatalf("diff len = %d", d.Len())
	}
	i := Intersect(nil, a, b)
	if i.Len() != 1 || i.HeadValue(0).OID() != 3 {
		t.Fatalf("intersect = %v", i.HeadValues())
	}
}

// Property: union/diff/intersect satisfy |A∪B| = |A| + |B∖A| and
// |A| = |A∩B| + |A∖B| on identifier sets.
func TestSetOpCardinalities(t *testing.T) {
	f := func(araw, braw []uint8) bool {
		a := idSet("a", araw)
		b := idSet("b", braw)
		u := Union(nil, a, b)
		d := Diff(nil, a, b)
		db := Diff(nil, b, a)
		i := Intersect(nil, a, b)
		return u.Len() == a.Len()+db.Len() && a.Len() == i.Len()+d.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// idSet builds an identified value set with unique heads from raw bytes.
func idSet(name string, raw []uint8) *bat.BAT {
	seen := map[bat.OID]bool{}
	var hs []bat.OID
	for _, v := range raw {
		o := bat.OID(v % 32)
		if !seen[o] {
			seen[o] = true
			hs = append(hs, o)
		}
	}
	ts := make([]int64, len(hs))
	for i := range ts {
		ts[i] = int64(hs[i]) * 10
	}
	return bat.New(name, bat.NewOIDCol(hs), bat.NewIntCol(ts), bat.HKey)
}

// --- sort / slice ----------------------------------------------------------------

func TestSortTailAndSlice(t *testing.T) {
	b := oidIntBAT("x", []bat.OID{1, 2, 3, 4}, []int64{30, 10, 40, 20}, 0)
	asc := SortTail(nil, b, false)
	if got := tailsInt(asc); got[0] != 10 || got[3] != 40 {
		t.Fatalf("asc = %v", got)
	}
	if !asc.Props.Has(bat.TOrdered) {
		t.Fatal("ascending sort must set TOrdered")
	}
	desc := SortTail(nil, b, true)
	if got := tailsInt(desc); got[0] != 40 || got[3] != 10 {
		t.Fatalf("desc = %v", got)
	}
	top2 := Slice(nil, desc, 2)
	if got := tailsInt(top2); len(got) != 2 || got[0] != 40 || got[1] != 30 {
		t.Fatalf("top2 = %v", got)
	}
	if Slice(nil, desc, 100).Len() != 4 {
		t.Fatal("overlong slice must clamp")
	}
}

func TestSortStability(t *testing.T) {
	// equal keys keep original head order (stable sort)
	b := oidIntBAT("x", []bat.OID{5, 6, 7}, []int64{1, 1, 1}, 0)
	s := SortTail(nil, b, false)
	if got := headsOID(s); got[0] != 5 || got[1] != 6 || got[2] != 7 {
		t.Fatalf("stability broken: %v", got)
	}
}
