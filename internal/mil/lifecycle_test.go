package mil

import (
	"context"
	"errors"
	"testing"

	"repro/internal/bat"
)

// TestValidateStmtUserErrors: the statement shapes that used to reach a
// kernel panic from a user-supplied program (unknown multiplex/calc/aggr
// functions, arity mismatches, multiplex without a BAT operand) are
// rejected before execution as *UserError — the server maps these to 400,
// so none of them may surface as a panic or an internal error.
func TestValidateStmtUserErrors(t *testing.T) {
	env := buildQ13Env()
	cases := []struct {
		name string
		stmt Stmt
	}{
		{"unknown multiplex fn", Stmt{Dst: "x", Op: OpMultiplex, Fn: "no_such_fn",
			Args: []StmtArg{VarArg("Item_discount")}}},
		{"multiplex arity", Stmt{Dst: "x", Op: OpMultiplex, Fn: "year",
			Args: []StmtArg{VarArg("Order_orderdate"), VarArg("Item_discount")}}},
		{"multiplex no BAT operand", Stmt{Dst: "x", Op: OpMultiplex, Fn: "+",
			Args: []StmtArg{LitArg(bat.I(1)), LitArg(bat.I(2))}}},
		{"unknown calc fn", Stmt{Dst: "x", Op: OpCalc, Fn: "no_such_fn",
			Args: []StmtArg{LitArg(bat.I(1))}}},
		{"unknown aggregate", Stmt{Dst: "x", Op: OpAggr, Fn: "median",
			Args: []StmtArg{VarArg("Item_discount")}}},
		{"unknown scalar aggregate", Stmt{Dst: "x", Op: OpAggrScalar, Fn: "median",
			Args: []StmtArg{VarArg("Item_discount")}}},
	}
	for _, tc := range cases {
		prog := &Program{Stmts: []Stmt{tc.stmt}, Keep: []string{"x"}}
		_, err := Run(nil, prog, env)
		var ue *UserError
		if !errors.As(err, &ue) {
			t.Errorf("%s: got %v, want *UserError", tc.name, err)
		}
	}
}

// TestExecHookPanicContained: a panic during a statement — here injected
// through the test hook, standing in for a kernel invariant failure or a
// storage fault — is converted by the interpreter's recovery boundary into
// a *PanicError carrying the op trace, never an unwound goroutine.
func TestExecHookPanicContained(t *testing.T) {
	SetExecHook(func(i int, op string) {
		if op == OpJoin {
			panic("injected kernel fault")
		}
	})
	defer SetExecHook(nil)

	_, err := Run(nil, q13Program(), buildQ13Env())
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if pe.Value != "injected kernel fault" || pe.Stmt == "" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError lost its trace: %+v", pe)
	}
}

// TestCancelAtOperatorBoundary: a context cancelled mid-program stops the
// interpreter at the next statement boundary with the context's own error.
func TestCancelAtOperatorBoundary(t *testing.T) {
	qctx, cancel := context.WithCancel(context.Background())
	ran := 0
	SetExecHook(func(i int, op string) {
		ran++
		if i == 2 {
			cancel() // observed at the stmt-3 boundary check
		}
	})
	defer SetExecHook(nil)

	ctx := &Ctx{Context: qctx}
	_, err := Run(ctx, q13Program(), buildQ13Env())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Fatalf("%d statements started after cancel at stmt 2, want 3", ran)
	}
}

// TestCancelStopsParallelDispatch: with parallel workers, a cancellation
// that lands while a data-parallel operator is mid-flight aborts through
// the morsel stop hook (bat.ErrAborted → context error), not by finishing
// the scan.
func TestCancelStopsParallelDispatch(t *testing.T) {
	qctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead when the first operator dispatches

	ctx := &Ctx{Context: qctx, Workers: 4}
	_, err := Run(ctx, q13Program(), buildQ13Env())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
