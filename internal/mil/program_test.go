package mil

import (
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/storage"
)

// buildQ13Env builds a miniature version of the paper's Q13 base data:
// Order_clerk, Item_order, Item_returnflag, Order_orderdate,
// Item_extendedprice, Item_discount.
func buildQ13Env() Env {
	// 4 orders (oids 0..3), clerks; order 1 and 3 by the target clerk
	orderClerk := bat.AttachDatavector(bat.New("Order_clerk", bat.NewVoid(0, 4),
		bat.NewStrColFromStrings([]string{"Clerk#1", "Clerk#88", "Clerk#2", "Clerk#88"}), 0))
	orderDate := bat.AttachDatavector(bat.New("Order_orderdate", bat.NewVoid(0, 4),
		bat.NewDateCol([]int32{
			int32(bat.MustDate("1994-02-01").I),
			int32(bat.MustDate("1994-06-15").I),
			int32(bat.MustDate("1995-01-20").I),
			int32(bat.MustDate("1995-03-05").I),
		}), 0))
	// 6 items (oids 0..5) -> orders 0,1,1,2,3,3
	itemOrder := bat.AttachDatavector(bat.New("Item_order", bat.NewVoid(0, 6),
		bat.NewOIDCol([]bat.OID{0, 1, 1, 2, 3, 3}), 0))
	itemFlag := bat.AttachDatavector(bat.New("Item_returnflag", bat.NewVoid(0, 6),
		bat.NewChrCol([]byte{'N', 'R', 'N', 'R', 'R', 'R'}), 0))
	itemPrice := bat.AttachDatavector(bat.New("Item_extendedprice", bat.NewVoid(0, 6),
		bat.NewFltCol([]float64{100, 200, 300, 400, 500, 600}), 0))
	itemDisc := bat.AttachDatavector(bat.New("Item_discount", bat.NewVoid(0, 6),
		bat.NewFltCol([]float64{0, 0.1, 0, 0, 0.5, 0.2}), 0))
	return Env{
		"Order_clerk":        orderClerk,
		"Order_orderdate":    orderDate,
		"Item_order":         itemOrder,
		"Item_returnflag":    itemFlag,
		"Item_extendedprice": itemPrice,
		"Item_discount":      itemDisc,
	}
}

// q13Program transcribes the MIL listing of Fig. 10.
func q13Program() *Program {
	return &Program{
		Stmts: []Stmt{
			{Dst: "orders", Op: OpSelect, Args: []StmtArg{VarArg("Order_clerk"), LitArg(bat.S("Clerk#88"))}},
			{Dst: "items", Op: OpJoin, Args: []StmtArg{VarArg("Item_order"), VarArg("orders")}},
			{Dst: "returns", Op: OpSemijoin, Args: []StmtArg{VarArg("Item_returnflag"), VarArg("items")}},
			{Dst: "ritems", Op: OpSelect, Args: []StmtArg{VarArg("returns"), LitArg(bat.C('R'))}},
			{Dst: "critems", Op: OpSemijoin, Args: []StmtArg{VarArg("Item_order"), VarArg("ritems")}},
			{Dst: "dates", Op: OpJoin, Args: []StmtArg{VarArg("critems"), VarArg("Order_orderdate")}},
			{Dst: "years", Op: OpMultiplex, Fn: "year", Args: []StmtArg{VarArg("dates")}},
			{Dst: "class", Op: OpGroup, Args: []StmtArg{VarArg("years")}},
			{Dst: "classm", Op: OpMirror, Args: []StmtArg{VarArg("class")}},
			{Dst: "YEAR0", Op: OpJoin, Args: []StmtArg{VarArg("classm"), VarArg("years")}},
			{Dst: "YEAR", Op: OpUnique, Args: []StmtArg{VarArg("YEAR0")}},
			{Dst: "prices", Op: OpSemijoin, Args: []StmtArg{VarArg("Item_extendedprice"), VarArg("ritems")}},
			{Dst: "discount", Op: OpSemijoin, Args: []StmtArg{VarArg("Item_discount"), VarArg("ritems")}},
			{Dst: "factor", Op: OpMultiplex, Fn: "-", Args: []StmtArg{LitArg(bat.F(1.0)), VarArg("discount")}},
			{Dst: "rlprices", Op: OpMultiplex, Fn: "*", Args: []StmtArg{VarArg("prices"), VarArg("factor")}},
			{Dst: "losses", Op: OpJoin, Args: []StmtArg{VarArg("classm"), VarArg("rlprices")}},
			{Dst: "LOSS", Op: OpAggr, Fn: "sum", Args: []StmtArg{VarArg("losses")}},
		},
		Keep: []string{"YEAR", "LOSS"},
	}
}

func TestQ13ProgramEndToEnd(t *testing.T) {
	env := buildQ13Env()
	ctx := &Ctx{Pager: storage.NewPager(4096, 0)}
	traces, err := Run(ctx, q13Program(), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 17 {
		t.Fatalf("traces = %d", len(traces))
	}
	year := env["YEAR"]
	loss := env["LOSS"]
	if year == nil || loss == nil {
		t.Fatal("kept results missing from env")
	}
	// Expected: clerk#88 has orders 1 (1994) and 3 (1995); returned items:
	// item1 (order1, 200*0.9=180), item4 (order3, 500*0.5=250),
	// item5 (order3, 600*0.8=480). So 1994 -> 180, 1995 -> 730.
	got := map[int64]float64{}
	for i := 0; i < loss.Len(); i++ {
		grp := loss.HeadValue(i)
		// find year of this group
		for j := 0; j < year.Len(); j++ {
			if bat.Equal(year.HeadValue(j), grp) {
				got[year.TailValue(j).I] = loss.TailValue(i).F
			}
		}
	}
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	if !almost(got[1994], 180) || !almost(got[1995], 730) {
		t.Fatalf("losses = %v, want 1994:180 1995:730", got)
	}
	// Intermediates were released; kept + accounting consistent.
	if ctx.IntermBytes <= 0 || ctx.PeakBytes <= 0 {
		t.Fatal("memory accounting missing")
	}
	if ctx.LiveBytes > ctx.PeakBytes {
		t.Fatal("live > peak")
	}
}

func almost(a, b float64) bool { return a > b-1e-6 && a < b+1e-6 }

func TestRunLivenessReleasesIntermediates(t *testing.T) {
	env := buildQ13Env()
	ctx := &Ctx{}
	_, err := Run(ctx, q13Program(), env)
	if err != nil {
		t.Fatal(err)
	}
	// Only kept vars and base BATs may remain.
	for name := range env {
		switch name {
		case "YEAR", "LOSS",
			"Order_clerk", "Order_orderdate", "Item_order",
			"Item_returnflag", "Item_extendedprice", "Item_discount":
		default:
			t.Errorf("intermediate %q not released", name)
		}
	}
}

func TestRunDatavectorReuseVisibleInTrace(t *testing.T) {
	env := buildQ13Env()
	// Runs with the pipeline on (the default): a semijoin head whose
	// stream operand carries a datavector must NOT fuse — the materialized
	// datavector variant is driven by the small right operand, and fusing
	// would replace it with a full scan. The algo assertions below double
	// as that no-pessimization guard.
	ctx := &Ctx{Pager: storage.NewPager(64, 0)} // tiny pages to force faults
	traces, err := Run(ctx, q13Program(), env)
	if err != nil {
		t.Fatal(err)
	}
	byDst := map[string]StmtTrace{}
	for _, tr := range traces {
		dst := strings.SplitN(tr.Text, " ", 2)[0]
		byDst[dst] = tr
	}
	if byDst["returns"].Algo != "datavector-semijoin" {
		t.Fatalf("returns algo = %s", byDst["returns"].Algo)
	}
	if byDst["prices"].Algo != "datavector-semijoin" {
		t.Fatalf("prices algo = %s", byDst["prices"].Algo)
	}
}

func TestRunErrorOnUndefinedVariable(t *testing.T) {
	prog := &Program{Stmts: []Stmt{
		{Dst: "x", Op: OpUnique, Args: []StmtArg{VarArg("missing")}},
	}}
	if _, err := Run(nil, prog, Env{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunErrorOnUnknownOp(t *testing.T) {
	env := Env{"a": bat.New("a", bat.NewVoid(0, 1), bat.NewIntCol([]int64{1}), 0)}
	prog := &Program{Stmts: []Stmt{
		{Dst: "x", Op: "frobnicate", Args: []StmtArg{VarArg("a")}},
	}}
	if _, err := Run(nil, prog, env); err == nil {
		t.Fatal("expected error")
	}
}

func TestScalarVarBroadcast(t *testing.T) {
	env := Env{
		"revs": bat.New("revs", bat.NewOIDCol([]bat.OID{1, 2, 3}),
			bat.NewFltCol([]float64{10, 20, 30}), 0),
	}
	prog := &Program{
		Stmts: []Stmt{
			{Dst: "total", Op: OpAggrScalar, Fn: "sum", Args: []StmtArg{VarArg("revs")}},
			{Dst: "share", Op: OpMultiplex, Fn: "/", Args: []StmtArg{VarArg("revs"), ScalarArg("total")}},
		},
		Keep: []string{"share"},
	}
	if _, err := Run(nil, prog, env); err != nil {
		t.Fatal(err)
	}
	share := env["share"]
	want := []float64{10.0 / 60, 20.0 / 60, 30.0 / 60}
	for i, w := range want {
		if got := share.TailValue(i).F; !almost(got, w) {
			t.Fatalf("share[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestStmtRendering(t *testing.T) {
	cases := []struct {
		s    Stmt
		want string
	}{
		{Stmt{Dst: "o", Op: OpSelect, Args: []StmtArg{VarArg("Order_clerk"), LitArg(bat.S("x"))}},
			`o := select(Order_clerk, "x")`},
		{Stmt{Dst: "i", Op: OpJoin, Args: []StmtArg{VarArg("a"), VarArg("b")}},
			`i := join(a, b)`},
		{Stmt{Dst: "m", Op: OpMirror, Args: []StmtArg{VarArg("c")}},
			`m := c.mirror`},
		{Stmt{Dst: "u", Op: OpUnique, Args: []StmtArg{VarArg("c")}},
			`u := c.unique`},
		{Stmt{Dst: "f", Op: OpMultiplex, Fn: "-", Args: []StmtArg{LitArg(bat.F(1)), VarArg("d")}},
			`f := [-](1, d)`},
		{Stmt{Dst: "s", Op: OpAggr, Fn: "sum", Args: []StmtArg{VarArg("l")}},
			`s := {sum}(l)`},
		{Stmt{Dst: "g", Op: OpGroup, Args: []StmtArg{VarArg("y")}},
			`g := group(y)`},
		{Stmt{Dst: "r", Op: OpSelectRange, Args: []StmtArg{VarArg("d"), LitArg(bat.I(1)), None()}},
			`r := select(d, 1)`},
		{Stmt{Dst: "t", Op: OpSort, Desc: true, Args: []StmtArg{VarArg("x")}},
			`t := sort(x, desc)`},
		{Stmt{Dst: "t", Op: OpSlice, N: 10, Args: []StmtArg{VarArg("x")}},
			`t := slice(x, 10)`},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("render = %q, want %q", got, c.want)
		}
	}
}

func TestBuilderFreshNames(t *testing.T) {
	b := NewBuilder()
	v1 := b.Emit("sel", Stmt{Op: OpUnique, Args: []StmtArg{VarArg("x")}})
	v2 := b.Emit("sel", Stmt{Op: OpUnique, Args: []StmtArg{VarArg(v1)}})
	if v1 == v2 {
		t.Fatal("names must be fresh")
	}
	b.KeepVar(v2)
	p := b.Program()
	if len(p.Stmts) != 2 || p.Keep[0] != v2 {
		t.Fatal("builder program wrong")
	}
	if !strings.Contains(p.String(), v1) {
		t.Fatal("printer missing var")
	}
}

func TestCallFuncPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CallFunc("no-such-fn", nil)
}

func TestFuncRegistry(t *testing.T) {
	if got := CallFunc("+", []bat.Value{bat.I(2), bat.I(3)}); got.I != 5 {
		t.Fatalf("2+3 = %v", got)
	}
	if got := CallFunc("+", []bat.Value{bat.I(2), bat.F(0.5)}); got.F != 2.5 {
		t.Fatalf("2+0.5 = %v", got)
	}
	if got := CallFunc("/", []bat.Value{bat.F(1), bat.F(0)}); got.F != 0 {
		t.Fatalf("div by zero = %v", got)
	}
	if got := CallFunc("year", []bat.Value{bat.MustDate("1997-05-09")}); got.I != 1997 {
		t.Fatalf("year = %v", got)
	}
	if got := CallFunc("month", []bat.Value{bat.MustDate("1997-05-09")}); got.I != 5 {
		t.Fatalf("month = %v", got)
	}
	if got := CallFunc("adddays", []bat.Value{bat.MustDate("1998-12-01"), bat.I(-90)}); got.String() != "1998-09-02" {
		t.Fatalf("adddays = %v", got)
	}
	if got := CallFunc("addmonths", []bat.Value{bat.MustDate("1995-01-31"), bat.I(1)}); got.K != bat.KDate {
		t.Fatalf("addmonths kind = %v", got.K)
	}
	if got := CallFunc("if", []bat.Value{bat.B(true), bat.I(1), bat.I(2)}); got.I != 1 {
		t.Fatalf("if = %v", got)
	}
	if got := CallFunc("strcontains", []bat.Value{bat.S("economy brushed"), bat.S("brush")}); !got.Bool() {
		t.Fatalf("strcontains = %v", got)
	}
	if got := CallFunc("not", []bat.Value{bat.B(false)}); !got.Bool() {
		t.Fatalf("not = %v", got)
	}
	if got := CallFunc("and", []bat.Value{bat.B(true), bat.B(true), bat.B(false)}); got.Bool() {
		t.Fatalf("and = %v", got)
	}
	if got := CallFunc("or", []bat.Value{bat.B(false), bat.B(true)}); !got.Bool() {
		t.Fatalf("or = %v", got)
	}
}
