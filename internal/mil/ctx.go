// Package mil implements the Monet Interpreter Language execution algebra of
// Boncz, Wilschut & Kersten (ICDE 1998), Section 4.2 and Figure 4: a small
// set of BAT-algebra primitives (mirror, semijoin, join, select, unique,
// group, multiplex, set-aggregate, set operations) that suffices to execute
// the MOA object algebra, plus the run-time "dynamic optimization" layer
// that picks among algorithm variants (hash / merge / sync / datavector)
// based on kernel-maintained BAT properties (Section 5.1).
//
// All operations materialize their result and never change their operands.
package mil

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/bat"
	"repro/internal/storage"
)

// MemGauge is a process-wide gauge of live intermediate bytes, shared by
// every concurrent query context that points at it: Account and Release
// mirror their per-query deltas into the gauge atomically. It feeds the
// server's admission controller — a query is refused while the gauge sits
// above the memory budget, shedding load before the process OOMs. A nil
// *MemGauge is valid and disables global tracking.
type MemGauge struct {
	live atomic.Int64
}

// Live reports the gauge's current live intermediate bytes.
func (g *MemGauge) Live() int64 {
	if g == nil {
		return 0
	}
	return g.live.Load()
}

// Add shifts the gauge by delta bytes. External reservations (admission
// holds, retained result sets) use it directly; query contexts feed it
// through Account/Release.
func (g *MemGauge) Add(delta int64) {
	if g != nil && delta != 0 {
		g.live.Add(delta)
	}
}

// Ctx carries the execution environment of one query: the paged-storage
// simulator (for Fig. 9/10 fault accounting), memory accounting for
// intermediate results, and the record of which algorithm variant the
// dynamic optimizer chose last (surfaced in traces).
//
// A nil *Ctx is valid and disables all accounting.
type Ctx struct {
	// Pager, when non-nil, is the shared paged-storage pool this query
	// touches. The pool may be shared with any number of concurrent
	// queries (it is lock-striped); this query's own fault/hit counts are
	// attributed through a private storage.Tracker created on first touch
	// (see PageFaults).
	Pager *storage.Pager

	// Workers enables shared-memory parallel iteration (Section 2) for the
	// data-parallel operators when > 1; results are bit-identical to
	// sequential execution.
	Workers int

	// MorselRows tunes the morsel-driven scheduler that hands parallel work
	// to the workers: 0 picks the skew-aware default (~L2-sized probe
	// chunks, whole partitions for builds), > 0 forces an explicit probe
	// morsel length in rows, and < 0 disables morsel claiming entirely in
	// favor of static per-worker striping (the pre-morsel baseline, kept
	// for ablations and parity runs). Every setting is bit-identical.
	MorselRows int

	// Pipeline selects the execution strategy for fusable statement chains
	// (select → semijoin/diff/join → aggregate): 0 (the default) and > 0
	// stream cache-resident vectors with selection vectors through the
	// chain, materializing only the chain's final result; < 0 forces full
	// materialization of every statement — the parity reference the
	// pipeline is tested against. Every setting is bit-identical.
	Pipeline int

	// VectorRows tunes the pipeline's vector length in rows; 0 picks
	// bat.DefaultVectorRows (~L1-sized windows).
	VectorRows int

	// Gauge, when non-nil, receives every Account/Release delta: the
	// process-wide live-bytes feed of the server's admission control.
	Gauge *MemGauge

	// Profile enables the per-statement dispatch profiling that is not free:
	// parallel dispatches allocate per-worker share counters so traces can
	// carry workers engaged / morsels claimed / max worker share (the
	// runtime skew signal). Everything else in a trace — wall time, tracker
	// fault/hit deltas, output bytes, accelerator builds — is cheap enough
	// to stay always-on.
	Profile bool

	// Context, when non-nil, is the query's lifecycle: when it is cancelled
	// (client disconnect) or its deadline expires, the interpreter stops at
	// the next operator boundary and every parallel dispatch stops within
	// one morsel (see Cancelled). A nil Context never cancels.
	Context context.Context

	// canceled caches an observed cancellation so the amortized check is a
	// single atomic load once the signal has fired (several goroutines —
	// morsel workers via the Sched.Stop hook — may consult it).
	canceled atomic.Bool

	// IntermBytes accumulates the owned size of every intermediate BAT
	// created ("total MB" column in Fig. 9). Zero-copy views are counted
	// at their owned (shared-backing-excluded) size, so view-heavy plans
	// report the memory they actually allocate.
	IntermBytes int64
	// LiveBytes tracks currently-live intermediate bytes and PeakBytes its
	// maximum ("max MB" column in Fig. 9).
	LiveBytes int64
	PeakBytes int64

	// lastAlgo names the variant the dynamic optimizer chose for the most
	// recent operation (e.g. "merge-join", "datavector-semijoin").
	lastAlgo string

	// Statement-scoped profile accumulators, drained into the statement's
	// trace by FillStmtProf at each statement boundary. All writes happen on
	// the interpreter goroutine: accelerator builds run under the
	// singleflight slot lock on the goroutine that triggered them, and
	// dispatch recorders fold their per-worker counters back after
	// MorselDoStop returns — so plain fields suffice.
	profBuilds  int
	profBuildNs int64
	profWorkers int
	profMorsels int
	profShare   float64

	// tracker attributes this query's touches of the shared Pager pool;
	// created lazily by pager() on the interpreter goroutine (operators
	// account their page touches before fanning work out to parallel
	// workers, so the lazy init is single-threaded).
	tracker *storage.Tracker
}

// Options collects every Ctx tuning knob in one place. The zero value is a
// fully usable default (sequential, no paging simulation, no accounting,
// pipeline on). Constructing contexts through NewCtx replaces scattering
// field assignments across engine, server and cmd callers; the Ctx fields
// themselves stay exported for tests and ablations that tweak one knob
// mid-flight.
type Options struct {
	// Pager is the shared paged-storage pool the query's touches hit; nil
	// disables the paging simulation. See Ctx.Pager.
	Pager *storage.Pager
	// Workers enables parallel iteration when > 1. See Ctx.Workers.
	Workers int
	// MorselRows tunes morsel-driven scheduling (0 auto, > 0 explicit,
	// < 0 static striping). See Ctx.MorselRows.
	MorselRows int
	// Pipeline selects vectorized (>= 0) or fully materialized (< 0)
	// execution of fusable chains. See Ctx.Pipeline.
	Pipeline int
	// VectorRows tunes the pipeline vector length (0 picks the default).
	// See Ctx.VectorRows.
	VectorRows int
	// Gauge, when non-nil, receives live-intermediate-bytes deltas. See
	// Ctx.Gauge.
	Gauge *MemGauge
	// Profile enables per-statement dispatch profiling. See Ctx.Profile.
	Profile bool
}

// NewCtx returns a query context configured by o and bound to the lifecycle
// of cx: cancellation or deadline expiry stops the interpreter at the next
// operator boundary and parallel dispatch within one morsel. A cx that can
// never fire (context.Background()) is not retained, keeping the
// uncancellable fast path free of even the amortized check; passing nil cx
// means the query has no lifecycle.
func NewCtx(cx context.Context, o Options) *Ctx {
	c := &Ctx{
		Pager:      o.Pager,
		Workers:    o.Workers,
		MorselRows: o.MorselRows,
		Pipeline:   o.Pipeline,
		VectorRows: o.VectorRows,
		Gauge:      o.Gauge,
		Profile:    o.Profile,
	}
	if cx != nil && cx.Done() != nil {
		c.Context = cx
	}
	return c
}

// pipelineOn reports whether fusable chains run vectorized. A nil Ctx runs
// the default strategy.
func (c *Ctx) pipelineOn() bool {
	return c == nil || c.Pipeline >= 0
}

// vectorRows reports the pipeline vector length to use.
func (c *Ctx) vectorRows() int {
	if c == nil || c.VectorRows <= 0 {
		return bat.DefaultVectorRows
	}
	return c.VectorRows
}

// Cancelled performs the cheap amortized cancellation check: one atomic
// load when the signal has already been observed, otherwise a non-blocking
// poll of Context.Done(). The interpreter calls it at every operator
// boundary and morsel dispatch consults it (through the stop hook) once
// per claimed unit, so a cancelled query stops within one morsel (~32k
// rows) of the signal without any per-row cost.
func (c *Ctx) Cancelled() bool {
	if c == nil {
		return false
	}
	if c.canceled.Load() {
		return true
	}
	cx := c.Context
	if cx == nil {
		return false
	}
	select {
	case <-cx.Done():
		c.canceled.Store(true)
		return true
	default:
		return false
	}
}

// CtxErr reports why the query was cancelled (context.Canceled or
// context.DeadlineExceeded), or nil when it was not.
func (c *Ctx) CtxErr() error {
	if c == nil || c.Context == nil {
		return nil
	}
	return c.Context.Err()
}

// stop returns the cancellation hook for parallel dispatch, or nil when the
// query has no lifecycle — the nil keeps the uncancellable fast path free
// of even the amortized check.
func (c *Ctx) stop() func() bool {
	if c == nil || c.Context == nil {
		return nil
	}
	return c.Cancelled
}

// LastAlgo reports the algorithm variant chosen by the most recent
// operation.
func (c *Ctx) LastAlgo() string {
	if c == nil {
		return ""
	}
	return c.lastAlgo
}

func (c *Ctx) chose(algo string) {
	if c != nil {
		c.lastAlgo = algo
	}
}

func (c *Ctx) pager() *storage.Tracker {
	if c == nil || c.Pager == nil {
		return nil
	}
	if c.tracker == nil {
		c.tracker = c.Pager.NewTracker()
	}
	return c.tracker
}

// PageFaults reports the page faults attributed to this query: touches of
// the shared pool that found the page non-resident. Unlike differencing the
// pool's aggregate counter around execution, this never includes a
// concurrent query's faults.
func (c *Ctx) PageFaults() uint64 {
	if c == nil {
		return 0
	}
	return c.tracker.Faults()
}

// PageHits reports the page hits attributed to this query.
func (c *Ctx) PageHits() uint64 {
	if c == nil {
		return 0
	}
	return c.tracker.Hits()
}

// Account records the creation of an intermediate BAT, charging the bytes
// its columns own: a zero-copy view's shared backing was charged once when
// the owning column was created, so views add (close to) nothing.
func (c *Ctx) Account(b *bat.BAT) {
	if c == nil || b == nil {
		return
	}
	sz := b.OwnedByteSize()
	c.IntermBytes += sz
	c.LiveBytes += sz
	if c.LiveBytes > c.PeakBytes {
		c.PeakBytes = c.LiveBytes
	}
	c.Gauge.Add(sz)
}

// Release records that an intermediate BAT is no longer live. It debits the
// same owned-byte measure Account credited, so credits and debits always
// balance. Known approximation: a zero-copy view that outlives its owning
// intermediate keeps the owner's backing alive after the owner's release
// debited it, so LiveBytes (and the gauge) can under-count within a query;
// the window closes at query end (DrainGauge), and views of base BATs —
// the common case — are unaffected (base data is never accounted). The
// admission budget is a load-shedding heuristic, not an allocator.
func (c *Ctx) Release(b *bat.BAT) {
	if c == nil || b == nil {
		return
	}
	sz := b.OwnedByteSize()
	c.LiveBytes -= sz
	if c.LiveBytes < 0 {
		c.LiveBytes = 0
	}
	c.Gauge.Add(-sz)
}

// DrainGauge returns the context's still-live bytes (kept results the
// interpreter never releases) to the shared gauge; the session calls it
// when the query's results have been materialized and the intermediates
// become garbage. Idempotent; per-query stats (PeakBytes, IntermBytes) are
// unaffected.
func (c *Ctx) DrainGauge() {
	if c == nil || c.Gauge == nil {
		return
	}
	c.Gauge.Add(-c.LiveBytes)
	c.LiveBytes = 0
}

// ResetStats zeroes the memory and fault accounting for a fresh query. The
// shared Pager pool (state and aggregate counters) is unaffected.
func (c *Ctx) ResetStats() {
	if c == nil {
		return
	}
	c.IntermBytes = 0
	c.LiveBytes = 0
	c.PeakBytes = 0
	c.lastAlgo = ""
	c.tracker = c.Pager.NewTracker()
	c.profBuilds, c.profBuildNs = 0, 0
	c.profWorkers, c.profMorsels, c.profShare = 0, 0, 0
}

// AccountScratch charges transient working memory that no BAT owns — the
// pipeline's position scratch — to the live/peak accounting and the
// admission gauge for the duration of its use. Scratch is working set, not
// a created intermediate, so IntermBytes (the Fig. 9 "total MB" column) is
// unaffected. Pair with ReleaseScratch.
func (c *Ctx) AccountScratch(sz int64) {
	if c == nil || sz <= 0 {
		return
	}
	c.LiveBytes += sz
	if c.LiveBytes > c.PeakBytes {
		c.PeakBytes = c.LiveBytes
	}
	c.Gauge.Add(sz)
}

// ReleaseScratch returns scratch charged by AccountScratch.
func (c *Ctx) ReleaseScratch(sz int64) {
	if c == nil || sz <= 0 {
		return
	}
	c.LiveBytes -= sz
	if c.LiveBytes < 0 {
		c.LiveBytes = 0
	}
	c.Gauge.Add(-sz)
}

// noteBuild records one accelerator construction this query triggered (and
// won — singleflight losers wait but do not build). Build events are rare
// (once per accelerator per epoch), so this is always-on.
func (c *Ctx) noteBuild(d time.Duration) {
	if c == nil {
		return
	}
	c.profBuilds++
	c.profBuildNs += int64(d)
}

// buildHook returns the accelerator-build observer to thread through
// bat.Sched, or nil for a nil Ctx.
func (c *Ctx) buildHook() func(time.Duration) {
	if c == nil {
		return nil
	}
	return c.noteBuild
}

// dispatchRec collects one parallel dispatch's per-worker load when
// profiling is enabled; a nil recorder (profiling off, the fast path) makes
// every method a no-op. Workers increment plain counters — safe because a
// worker id never runs two units concurrently (the MorselDo contract) and
// each worker touches only its own slots.
type dispatchRec struct {
	rows    []int64
	morsels []int64
}

// dispatchRec returns a recorder for a k-worker dispatch, or nil when
// profiling is off.
func (c *Ctx) dispatchRec(k int) *dispatchRec {
	if c == nil || !c.Profile {
		return nil
	}
	return &dispatchRec{rows: make([]int64, k), morsels: make([]int64, k)}
}

// claim records that worker w processed one morsel of the given row count.
func (r *dispatchRec) claim(w, rows int) {
	if r == nil {
		return
	}
	r.rows[w] += int64(rows)
	r.morsels[w]++
}

// done folds the dispatch's counters into the statement-scoped accumulators
// on the dispatching goroutine: workers engaged is the max across the
// statement's dispatches, morsels accumulate, and the share is the largest
// fraction of one dispatch's rows claimed by a single worker (1/k is
// perfect balance, 1.0 is total skew).
func (r *dispatchRec) done(c *Ctx) {
	if r == nil {
		return
	}
	var total, maxRows, morsels int64
	engaged := 0
	for w := range r.rows {
		total += r.rows[w]
		morsels += r.morsels[w]
		if r.morsels[w] > 0 {
			engaged++
		}
		if r.rows[w] > maxRows {
			maxRows = r.rows[w]
		}
	}
	if engaged > c.profWorkers {
		c.profWorkers = engaged
	}
	c.profMorsels += int(morsels)
	if total > 0 {
		if sh := float64(maxRows) / float64(total); sh > c.profShare {
			c.profShare = sh
		}
	}
}

// FillStmtProf drains the statement-scoped profile accumulators into tr and
// resets them for the next statement. The interpreter calls it at every
// statement boundary whether or not profiling is enabled — build accounting
// is always-on, and the reset (a handful of plain stores) keeps one
// statement's events from bleeding into the next.
func (c *Ctx) FillStmtProf(tr *StmtTrace) {
	if c == nil {
		return
	}
	tr.AccelBuilds = c.profBuilds
	tr.AccelBuildNs = c.profBuildNs
	tr.Workers = c.profWorkers
	tr.Morsels = c.profMorsels
	tr.MaxShare = c.profShare
	c.profBuilds, c.profBuildNs = 0, 0
	c.profWorkers, c.profMorsels, c.profShare = 0, 0, 0
}
