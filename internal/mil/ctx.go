// Package mil implements the Monet Interpreter Language execution algebra of
// Boncz, Wilschut & Kersten (ICDE 1998), Section 4.2 and Figure 4: a small
// set of BAT-algebra primitives (mirror, semijoin, join, select, unique,
// group, multiplex, set-aggregate, set operations) that suffices to execute
// the MOA object algebra, plus the run-time "dynamic optimization" layer
// that picks among algorithm variants (hash / merge / sync / datavector)
// based on kernel-maintained BAT properties (Section 5.1).
//
// All operations materialize their result and never change their operands.
package mil

import (
	"repro/internal/bat"
	"repro/internal/storage"
)

// Ctx carries the execution environment of one query: the paged-storage
// simulator (for Fig. 9/10 fault accounting), memory accounting for
// intermediate results, and the record of which algorithm variant the
// dynamic optimizer chose last (surfaced in traces).
//
// A nil *Ctx is valid and disables all accounting.
type Ctx struct {
	Pager *storage.Pager

	// Workers enables shared-memory parallel iteration (Section 2) for the
	// data-parallel operators when > 1; results are bit-identical to
	// sequential execution.
	Workers int

	// MorselRows tunes the morsel-driven scheduler that hands parallel work
	// to the workers: 0 picks the skew-aware default (~L2-sized probe
	// chunks, whole partitions for builds), > 0 forces an explicit probe
	// morsel length in rows, and < 0 disables morsel claiming entirely in
	// favor of static per-worker striping (the pre-morsel baseline, kept
	// for ablations and parity runs). Every setting is bit-identical.
	MorselRows int

	// IntermBytes accumulates the size of every intermediate BAT created
	// ("total MB" column in Fig. 9).
	IntermBytes int64
	// LiveBytes tracks currently-live intermediate bytes and PeakBytes its
	// maximum ("max MB" column in Fig. 9).
	LiveBytes int64
	PeakBytes int64

	// lastAlgo names the variant the dynamic optimizer chose for the most
	// recent operation (e.g. "merge-join", "datavector-semijoin").
	lastAlgo string
}

// LastAlgo reports the algorithm variant chosen by the most recent
// operation.
func (c *Ctx) LastAlgo() string {
	if c == nil {
		return ""
	}
	return c.lastAlgo
}

func (c *Ctx) chose(algo string) {
	if c != nil {
		c.lastAlgo = algo
	}
}

func (c *Ctx) pager() *storage.Pager {
	if c == nil {
		return nil
	}
	return c.Pager
}

// Account records the creation of an intermediate BAT.
func (c *Ctx) Account(b *bat.BAT) {
	if c == nil || b == nil {
		return
	}
	sz := b.ByteSize()
	c.IntermBytes += sz
	c.LiveBytes += sz
	if c.LiveBytes > c.PeakBytes {
		c.PeakBytes = c.LiveBytes
	}
}

// Release records that an intermediate BAT is no longer live.
func (c *Ctx) Release(b *bat.BAT) {
	if c == nil || b == nil {
		return
	}
	c.LiveBytes -= b.ByteSize()
	if c.LiveBytes < 0 {
		c.LiveBytes = 0
	}
}

// ResetStats zeroes the memory accounting for a fresh query.
func (c *Ctx) ResetStats() {
	if c == nil {
		return
	}
	c.IntermBytes = 0
	c.LiveBytes = 0
	c.PeakBytes = 0
	c.lastAlgo = ""
}
