package mil

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bat"
)

// Func is a scalar function usable inside the multiplex constructor [f]
// (Section 4.2: "allows bulk application of any algebraic operation on all
// tail values of a BAT") and inside selection predicates.
type Func struct {
	Name  string
	Arity int // -1 = variadic
	Apply func(args []bat.Value) bat.Value
}

var funcs = map[string]*Func{}

// RegisterFunc adds a scalar function to the multiplex registry; it is the
// Go analogue of Monet's run-time operator extensibility (Section 2,
// "algebra commands and operators can be added").
func RegisterFunc(f *Func) { funcs[f.Name] = f }

// LookupFunc finds a registered scalar function.
func LookupFunc(name string) (*Func, bool) {
	f, ok := funcs[name]
	return f, ok
}

func numeric2(name string, fi func(a, b int64) int64, ff func(a, b float64) float64) *Func {
	return &Func{Name: name, Arity: 2, Apply: func(a []bat.Value) bat.Value {
		x, y := a[0], a[1]
		if x.K == bat.KInt && y.K == bat.KInt {
			return bat.I(fi(x.I, y.I))
		}
		return bat.F(ff(x.AsFloat(), y.AsFloat()))
	}}
}

func cmp(name string, ok func(c int) bool) *Func {
	return &Func{Name: name, Arity: 2, Apply: func(a []bat.Value) bat.Value {
		return bat.B(ok(bat.Compare(a[0], a[1])))
	}}
}

func init() {
	RegisterFunc(numeric2("+", func(a, b int64) int64 { return a + b }, func(a, b float64) float64 { return a + b }))
	RegisterFunc(numeric2("-", func(a, b int64) int64 { return a - b }, func(a, b float64) float64 { return a - b }))
	RegisterFunc(numeric2("*", func(a, b int64) int64 { return a * b }, func(a, b float64) float64 { return a * b }))
	RegisterFunc(&Func{Name: "/", Arity: 2, Apply: func(a []bat.Value) bat.Value {
		d := a[1].AsFloat()
		if d == 0 {
			return bat.F(0)
		}
		return bat.F(a[0].AsFloat() / d)
	}})
	RegisterFunc(cmp("=", func(c int) bool { return c == 0 }))
	RegisterFunc(cmp("!=", func(c int) bool { return c != 0 }))
	RegisterFunc(cmp("<", func(c int) bool { return c < 0 }))
	RegisterFunc(cmp("<=", func(c int) bool { return c <= 0 }))
	RegisterFunc(cmp(">", func(c int) bool { return c > 0 }))
	RegisterFunc(cmp(">=", func(c int) bool { return c >= 0 }))
	RegisterFunc(&Func{Name: "and", Arity: -1, Apply: func(a []bat.Value) bat.Value {
		for _, v := range a {
			if !v.Bool() {
				return bat.B(false)
			}
		}
		return bat.B(true)
	}})
	RegisterFunc(&Func{Name: "or", Arity: -1, Apply: func(a []bat.Value) bat.Value {
		for _, v := range a {
			if v.Bool() {
				return bat.B(true)
			}
		}
		return bat.B(false)
	}})
	RegisterFunc(&Func{Name: "not", Arity: 1, Apply: func(a []bat.Value) bat.Value {
		return bat.B(!a[0].Bool())
	}})
	RegisterFunc(&Func{Name: "if", Arity: 3, Apply: func(a []bat.Value) bat.Value {
		if a[0].Bool() {
			return a[1]
		}
		return a[2]
	}})
	RegisterFunc(&Func{Name: "year", Arity: 1, Apply: func(a []bat.Value) bat.Value {
		return bat.I(int64(dayToTime(a[0].I).Year()))
	}})
	RegisterFunc(&Func{Name: "month", Arity: 1, Apply: func(a []bat.Value) bat.Value {
		return bat.I(int64(dayToTime(a[0].I).Month()))
	}})
	RegisterFunc(&Func{Name: "adddays", Arity: 2, Apply: func(a []bat.Value) bat.Value {
		return bat.D(int32(a[0].I + a[1].I))
	}})
	RegisterFunc(&Func{Name: "addmonths", Arity: 2, Apply: func(a []bat.Value) bat.Value {
		t := dayToTime(a[0].I).AddDate(0, int(a[1].I), 0)
		return bat.D(int32(t.Unix() / 86400))
	}})
	RegisterFunc(&Func{Name: "strstarts", Arity: 2, Apply: func(a []bat.Value) bat.Value {
		return bat.B(strings.HasPrefix(a[0].S, a[1].S))
	}})
	RegisterFunc(&Func{Name: "strcontains", Arity: 2, Apply: func(a []bat.Value) bat.Value {
		return bat.B(strings.Contains(a[0].S, a[1].S))
	}})
	RegisterFunc(&Func{Name: "strends", Arity: 2, Apply: func(a []bat.Value) bat.Value {
		return bat.B(strings.HasSuffix(a[0].S, a[1].S))
	}})
	RegisterFunc(&Func{Name: "length", Arity: 1, Apply: func(a []bat.Value) bat.Value {
		return bat.I(int64(len(a[0].S)))
	}})
	RegisterFunc(&Func{Name: "neg", Arity: 1, Apply: func(a []bat.Value) bat.Value {
		if a[0].K == bat.KInt {
			return bat.I(-a[0].I)
		}
		return bat.F(-a[0].AsFloat())
	}})
	RegisterFunc(&Func{Name: "flt", Arity: 1, Apply: func(a []bat.Value) bat.Value {
		return bat.F(a[0].AsFloat())
	}})
	RegisterFunc(&Func{Name: "int", Arity: 1, Apply: func(a []bat.Value) bat.Value {
		return bat.I(int64(a[0].AsFloat()))
	}})
	// snd projects its second argument; multiplexing [snd](AB, const) lifts
	// a constant into a value set synced with AB (used by the rewriter to
	// materialize constant-valued projection fields).
	RegisterFunc(&Func{Name: "snd", Arity: 2, Apply: func(a []bat.Value) bat.Value {
		return a[1]
	}})
}

func dayToTime(days int64) time.Time {
	return time.Unix(days*86400, 0).UTC()
}

// CallFunc applies a registered scalar function, panicking on unknown names
// or arity mismatch: the rewriter type-checks calls before emitting them, so
// a failure here is a translator bug, not user error.
func CallFunc(name string, args []bat.Value) bat.Value {
	f, ok := funcs[name]
	if !ok {
		panic(fmt.Sprintf("mil: unknown function %q", name))
	}
	if f.Arity >= 0 && f.Arity != len(args) {
		panic(fmt.Sprintf("mil: function %q wants %d args, got %d", name, f.Arity, len(args)))
	}
	return f.Apply(args)
}
