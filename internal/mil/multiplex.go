package mil

import (
	"fmt"

	"repro/internal/bat"
)

// Operand is one argument of a multiplexed operation: either a BAT (a value
// set) or a constant lifted over it.
type Operand struct {
	B     *bat.BAT
	Const *bat.Value
}

// BATArg wraps a BAT operand.
func BATArg(b *bat.BAT) Operand { return Operand{B: b} }

// ConstArg wraps a constant operand.
func ConstArg(v bat.Value) Operand { return Operand{Const: &v} }

// Multiplex implements the multiplex constructor [f](AB, …, XY):
// {a·f(b,…,y) | ab ∈ AB, …, xy ∈ XY ∧ a = … = x} (Fig. 4). It vectorizes
// computation of expressions and method invocations (Section 4.2). Constant
// operands are broadcast.
//
// When all BAT operands are positionally synced (the common case: they all
// stem from semijoins with the same candidate set, cf. the Fig. 10
// discussion of synced prices/discount), the natural join on heads
// degenerates to an aligned scan. Otherwise operands are matched on head
// value via hash lookup.
func Multiplex(ctx *Ctx, fn string, args []Operand) *bat.BAT {
	f, ok := LookupFunc(fn)
	if !ok {
		panic(fmt.Sprintf("mil: multiplex of unknown function %q", fn))
	}
	nb := 0
	var first *bat.BAT
	for _, a := range args {
		if a.B != nil {
			if first == nil {
				first = a.B
			}
			nb++
		}
	}
	if first == nil {
		panic("mil: multiplex needs at least one BAT operand")
	}
	if f.Arity >= 0 && f.Arity != len(args) {
		panic(fmt.Sprintf("mil: function %q wants %d args, got %d", fn, f.Arity, len(args)))
	}

	aligned := true
	for _, a := range args {
		if a.B != nil && a.B != first && !bat.Synced(first, a.B) {
			aligned = false
			break
		}
	}
	if aligned {
		return multiplexAligned(ctx, f, first, args)
	}
	return multiplexHash(ctx, f, first, args)
}

func multiplexAligned(ctx *Ctx, f *Func, first *bat.BAT, args []Operand) *bat.BAT {
	ctx.chose("aligned-multiplex")
	p := ctx.pager()
	for _, a := range args {
		if a.B != nil {
			a.B.T.TouchAll(p)
		}
	}
	n := first.Len()

	if out := multiplexFltFast(f.Name, first, args, n); out != nil {
		return out
	}

	vals := make([]bat.Value, n)
	parallelFill(ctx, n, func(from, to int) {
		buf := make([]bat.Value, len(args))
		for i := from; i < to; i++ {
			for j, a := range args {
				if a.B != nil {
					buf[j] = a.B.T.Get(i)
				} else {
					buf[j] = *a.Const
				}
			}
			vals[i] = f.Apply(buf)
		}
	})
	kind := bat.KBit
	if n > 0 {
		kind = vals[0].K
	} else {
		kind = multiplexZeroKind(f, args)
	}
	out := bat.New("["+f.Name+"]", first.H, bat.FromValues(kind, vals),
		first.Props&(bat.HOrdered|bat.HKey))
	out.SyncWith(first)
	return out
}

// multiplexZeroKind guesses a result kind for empty inputs so that the BAT
// still carries a sensible type.
func multiplexZeroKind(f *Func, args []Operand) bat.Kind {
	switch f.Name {
	case "=", "!=", "<", "<=", ">", ">=", "and", "or", "not",
		"strstarts", "strcontains", "strends":
		return bat.KBit
	case "/", "flt":
		return bat.KFlt
	case "year", "month", "length", "int":
		return bat.KInt
	case "adddays", "addmonths":
		return bat.KDate
	}
	for _, a := range args {
		if a.B != nil {
			return a.B.T.Kind()
		}
	}
	return bat.KInt
}

// multiplexFltFast handles the hot arithmetic shapes of the TPC-D queries
// ([*] and [-] over float columns, possibly with one constant) without
// boxing.
func multiplexFltFast(fn string, first *bat.BAT, args []Operand, n int) *bat.BAT {
	if len(args) != 2 {
		return nil
	}
	colOf := func(a Operand) ([]float64, bool) {
		if a.B == nil {
			return nil, false
		}
		c, ok := a.B.T.(*bat.FltCol)
		if !ok {
			return nil, false
		}
		return c.V, true
	}
	constOf := func(a Operand) (float64, bool) {
		if a.Const == nil || !a.Const.IsNumeric() {
			return 0, false
		}
		return a.Const.AsFloat(), true
	}
	var apply func(x, y float64) float64
	switch fn {
	case "+":
		apply = func(x, y float64) float64 { return x + y }
	case "-":
		apply = func(x, y float64) float64 { return x - y }
	case "*":
		apply = func(x, y float64) float64 { return x * y }
	default:
		return nil
	}
	out := make([]float64, n)
	switch {
	case args[0].B != nil && args[1].B != nil:
		x, ok1 := colOf(args[0])
		y, ok2 := colOf(args[1])
		if !ok1 || !ok2 {
			return nil
		}
		for i := 0; i < n; i++ {
			out[i] = apply(x[i], y[i])
		}
	case args[0].Const != nil && args[1].B != nil:
		c, ok1 := constOf(args[0])
		y, ok2 := colOf(args[1])
		if !ok1 || !ok2 {
			return nil
		}
		for i := 0; i < n; i++ {
			out[i] = apply(c, y[i])
		}
	case args[0].B != nil && args[1].Const != nil:
		x, ok1 := colOf(args[0])
		c, ok2 := constOf(args[1])
		if !ok1 || !ok2 {
			return nil
		}
		for i := 0; i < n; i++ {
			out[i] = apply(x[i], c)
		}
	default:
		return nil
	}
	res := bat.New("["+fn+"]", first.H, bat.NewFltCol(out),
		first.Props&(bat.HOrdered|bat.HKey))
	res.SyncWith(first)
	return res
}

func multiplexHash(ctx *Ctx, f *Func, first *bat.BAT, args []Operand) *bat.BAT {
	ctx.chose("hash-multiplex")
	p := ctx.pager()
	// Build head→position maps for all non-first BAT operands; iterate the
	// first in order (natural join on heads, assuming key heads — true for
	// value sets, which are identified value sets by construction).
	type lookup struct {
		arg Operand
		idx map[bat.Value]int
	}
	lookups := make([]lookup, len(args))
	for j, a := range args {
		lookups[j].arg = a
		if a.B != nil && a.B != first {
			a.B.H.TouchAll(p)
			a.B.T.TouchAll(p)
			m := make(map[bat.Value]int, a.B.Len())
			for i := 0; i < a.B.Len(); i++ {
				h := a.B.H.Get(i)
				if _, dup := m[h]; !dup {
					m[h] = i
				}
			}
			lookups[j].idx = m
		}
	}
	first.H.TouchAll(p)
	first.T.TouchAll(p)

	buf := make([]bat.Value, len(args))
	var heads, vals []bat.Value
outer:
	for i := 0; i < first.Len(); i++ {
		h := first.H.Get(i)
		for j, a := range args {
			switch {
			case a.Const != nil:
				buf[j] = *a.Const
			case a.B == first:
				buf[j] = first.T.Get(i)
			default:
				pos, ok := lookups[j].idx[h]
				if !ok {
					continue outer // natural join: drop unmatched heads
				}
				buf[j] = a.B.T.Get(pos)
			}
		}
		heads = append(heads, h)
		vals = append(vals, f.Apply(buf))
	}
	kind := multiplexZeroKind(f, args)
	if len(vals) > 0 {
		kind = vals[0].K
	}
	out := bat.New("["+f.Name+"]", bat.FromValues(first.H.Kind(), heads),
		bat.FromValues(kind, vals), 0)
	if first.Props.Has(bat.HOrdered) {
		out.Props |= bat.HOrdered
	}
	if first.Props.Has(bat.HKey) {
		out.Props |= bat.HKey
	}
	if out.Len() == first.Len() {
		out.SyncWith(first)
	}
	return out
}
