package mil

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/bat"
)

// pairSet renders a join result as an order-insensitive set of
// (head, tail) pairs for parity comparison across variants.
func pairSet(b *bat.BAT) []string {
	out := make([]string, b.Len())
	for i := range out {
		out[i] = fmt.Sprintf("%s|%s", b.HeadValue(i), b.TailValue(i))
	}
	sort.Strings(out)
	return out
}

func samePairs(t *testing.T, got, want *bat.BAT) {
	t.Helper()
	g, w := pairSet(got), pairSet(want)
	if len(g) != len(w) {
		t.Fatalf("cardinality %d != %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("pair %d: %s != %s", i, g[i], w[i])
		}
	}
}

// TestJoinRedetectsStrippedTailOrder: a join whose left tail is ordered but
// whose Props were stripped (the fate of most intermediates) must recover
// the ordering at dispatch time and take the merge variant — with results
// identical to the hash fallback.
func TestJoinRedetectsStrippedTailOrder(t *testing.T) {
	l := oidIntBAT("l", []bat.OID{9, 3, 7, 1}, []int64{10, 20, 20, 40}, 0)
	r := bat.New("r", bat.NewIntCol([]int64{10, 15, 20, 40, 45}),
		bat.NewOIDCol([]bat.OID{100, 101, 102, 103, 104}), 0)

	ctx := &Ctx{}
	out := Join(ctx, l, r)
	if ctx.LastAlgo() != "merge-join" {
		t.Fatalf("algo = %s, want merge-join (ordered props not re-detected?)", ctx.LastAlgo())
	}

	l2 := oidIntBAT("l2", []bat.OID{9, 3, 7, 1}, []int64{10, 20, 20, 40}, 0)
	r2 := bat.New("r2", bat.NewIntCol([]int64{10, 15, 20, 40, 45}),
		bat.NewOIDCol([]bat.OID{100, 101, 102, 103, 104}), 0)
	ref := hashJoin(&Ctx{}, l2, r2)
	samePairs(t, out, ref)
}

// TestJoinRedetectsDenseHead: a right head that is a dense oid run stored in
// a materialized OIDCol (so HDense was stripped) should be re-detected and
// served by the positional fetch variant.
func TestJoinRedetectsDenseHead(t *testing.T) {
	l := bat.New("l", bat.NewOIDCol([]bat.OID{1, 2, 3}),
		bat.NewOIDCol([]bat.OID{5, 6, 8}), 0)
	r := bat.New("r", bat.NewOIDCol([]bat.OID{5, 6, 7, 8}),
		bat.NewIntCol([]int64{50, 60, 70, 80}), 0)

	ctx := &Ctx{}
	out := Join(ctx, l, r)
	if ctx.LastAlgo() != "fetch-join" {
		t.Fatalf("algo = %s, want fetch-join (dense head not re-detected?)", ctx.LastAlgo())
	}

	l2 := bat.New("l2", bat.NewOIDCol([]bat.OID{1, 2, 3}),
		bat.NewOIDCol([]bat.OID{5, 6, 8}), 0)
	r2 := bat.New("r2", bat.NewOIDCol([]bat.OID{5, 6, 7, 8}),
		bat.NewIntCol([]int64{50, 60, 70, 80}), 0)
	ref := hashJoin(&Ctx{}, l2, r2)
	samePairs(t, out, ref)
}

// TestJoinUnorderedStaysHash: detection must not misfire — an actually
// unordered operand keeps the hash variant, and the (memoized) negative
// scan result does not flip later dispatches.
func TestJoinUnorderedStaysHash(t *testing.T) {
	l := oidIntBAT("l", []bat.OID{1, 2, 3}, []int64{30, 10, 20}, 0)
	r := bat.New("r", bat.NewIntCol([]int64{20, 10, 30}),
		bat.NewOIDCol([]bat.OID{7, 8, 9}), 0)
	for i := 0; i < 2; i++ {
		ctx := &Ctx{}
		out := Join(ctx, l, r)
		if ctx.LastAlgo() != "hash-join" {
			t.Fatalf("round %d: algo = %s, want hash-join", i, ctx.LastAlgo())
		}
		if out.Len() != 3 {
			t.Fatalf("round %d: %d pairs, want 3", i, out.Len())
		}
	}
}

// TestSemijoinRedetectsStrippedHeadOrder: both semijoin heads ordered but
// stripped — the merge variant must be recovered, with hash parity.
func TestSemijoinRedetectsStrippedHeadOrder(t *testing.T) {
	l := bat.New("l", bat.NewOIDCol([]bat.OID{2, 4, 6, 9}),
		bat.NewIntCol([]int64{20, 40, 60, 90}), 0)
	r := bat.New("r", bat.NewOIDCol([]bat.OID{4, 9, 12}),
		bat.NewIntCol([]int64{0, 0, 0}), 0)

	ctx := &Ctx{}
	out := Semijoin(ctx, l, r)
	if ctx.LastAlgo() != "merge-semijoin" {
		t.Fatalf("algo = %s, want merge-semijoin", ctx.LastAlgo())
	}

	l2 := bat.New("l2", bat.NewOIDCol([]bat.OID{2, 4, 6, 9}),
		bat.NewIntCol([]int64{20, 40, 60, 90}), 0)
	r2 := bat.New("r2", bat.NewOIDCol([]bat.OID{4, 9, 12}),
		bat.NewIntCol([]int64{0, 0, 0}), 0)
	ref := hashSemijoin(&Ctx{}, l2, r2)
	samePairs(t, out, ref)
}

// TestJoinCapFeedsBackHeadKey: the hash accelerator's cardinality count
// proves head uniqueness; the dispatch layer records it on the operand so
// later property propagation benefits.
func TestJoinCapFeedsBackHeadKey(t *testing.T) {
	// Unordered duplicate-free head: not detectable by the order scan,
	// only by the accelerator.
	r := bat.New("r", bat.NewIntCol([]int64{30, 10, 20}),
		bat.NewOIDCol([]bat.OID{7, 8, 9}), 0)
	l := oidIntBAT("l", []bat.OID{1, 2}, []int64{20, 30}, 0)
	_ = Join(&Ctx{}, l, r)
	if !r.KnownProps().Has(bat.HKey) {
		t.Fatalf("accelerator proved head keyness but it was not fed back: %s", r.KnownProps())
	}
}

// TestRedetectedPropsAreSound: everything detection claims must survive the
// kernel's own property verifier.
func TestRedetectedPropsAreSound(t *testing.T) {
	cases := []*bat.BAT{
		bat.New("dup-ordered", bat.NewOIDCol([]bat.OID{1, 1, 2}), bat.NewIntCol([]int64{5, 5, 7}), 0),
		bat.New("strict", bat.NewOIDCol([]bat.OID{3, 5, 9}), bat.NewFltCol([]float64{1.5, 2.5, 9}), 0),
		bat.New("dense", bat.NewOIDCol([]bat.OID{4, 5, 6}), bat.NewStrColFromStrings([]string{"a", "b", "b"}), 0),
		bat.New("unordered", bat.NewOIDCol([]bat.OID{4, 2, 6}), bat.NewIntCol([]int64{9, 1, 5}), 0),
	}
	for _, b := range cases {
		b.DetectHeadProps()
		b.DetectTailProps()
		nb := bat.New(b.Name, b.H, b.T, b.KnownProps())
		if err := nb.CheckProps(); err != nil {
			t.Errorf("%s: re-detected properties are unsound: %v", b.Name, err)
		}
	}
}
