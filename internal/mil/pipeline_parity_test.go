package mil

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bat"
)

// Pipeline-vs-materialization parity: every fusable chain shape — select
// heads (scan, binary-search run, tail-hash positions) through semijoin /
// diff / intersect / further selects, a hash or fetch join, and grouped or
// scalar aggregate terminals — must produce BUN-identical results under the
// vectorized pipeline and under full materialization (Pipeline < 0), at
// every worker count, morsel setting and vector length (including degenerate
// 1-row and odd-sized vectors), over the skew-parity key corpus. `make
// verify` runs this under -race as well.

// pipelineCtxs is the execution matrix: the materializing reference plus
// pipeline runs across schedules and vector lengths.
func pipelineCtxs() map[string]Options {
	return map[string]Options{
		"pipe-seq":        {Workers: 1},
		"pipe-w8":         {Workers: 8},
		"pipe-w3-1k":      {Workers: 3, MorselRows: 1024},
		"pipe-static-w8":  {Workers: 8, MorselRows: -1},
		"pipe-vec1":       {Workers: 1, VectorRows: 1},
		"pipe-vec7-w8":    {Workers: 8, VectorRows: 7},
		"pipe-vec1024-w3": {Workers: 3, VectorRows: 1024},
	}
}

// pipelineEnv builds the base BATs the chain programs run over, shaped by
// one skew-parity key distribution.
func pipelineEnv(keys []int64, ordered bool) Env {
	n := len(keys)
	fv := make([]float64, n)
	for i := range fv {
		fv[i] = float64((keys[i]*2654435761)%1000) / 3
	}
	var props bat.Props
	if ordered {
		props = bat.TOrdered
	}
	env := Env{}
	// fact: [void | int keys] — the chain stream (selects cut its tail).
	env["fact"] = bat.New("fact", bat.NewVoid(0, n), bat.NewIntCol(keys), props)
	// gf: [int keys | flt] — grouped-aggregate stream (select on the tail,
	// group on the skewed head; float tails make accumulation order part of
	// the parity contract).
	env["gf"] = bat.New("gf", bat.NewIntCol(keys), bat.NewFltCol(fv), 0)
	// hot: [oid subset | void] — semijoin/diff/intersect target keyed on
	// fact's dense OID head.
	var hots []bat.OID
	for i := 0; i < n; i += 3 {
		hots = append(hots, bat.OID(i))
	}
	env["hot"] = bat.New("hot", bat.NewOIDCol(hots), bat.NewVoid(0, len(hots)), bat.HKey)
	// dimv: [distinct ints | flt] — hash-join target on the stream's int tail
	// (covers only part of the key domain, so some stream rows miss).
	var dk []int64
	var dv []float64
	for i := int64(0); i < 1<<11; i += 2 {
		dk = append(dk, i)
		dv = append(dv, float64(i)*0.5-100)
	}
	env["dimv"] = bat.New("dimv", bat.NewIntCol(dk), bat.NewFltCol(dv), bat.HKey)
	// factp + dimd: fetch-join pair — factp's tail holds positional oids
	// into dimd's dense void head.
	m := 1 << 10
	ptrs := make([]bat.OID, n)
	for i := range ptrs {
		ptrs[i] = bat.OID(uint64(keys[i]) % uint64(m))
	}
	env["factp"] = bat.New("factp", bat.NewVoid(0, n), bat.NewOIDCol(ptrs), 0)
	md := make([]float64, m)
	for i := range md {
		md[i] = float64(i) * 1.25
	}
	env["dimd"] = bat.New("dimd", bat.NewVoid(0, m), bat.NewFltCol(md), 0)
	return env
}

// pipelinePrograms is the chain corpus, one MIL program per chain shape.
// Final names are unconsumed, so the parser marks them kept.
func pipelinePrograms() map[string]string {
	return map[string]string{
		"sel-sel":        "x := select(fact, 10, 2000)\nRES := select(x, 10, 700)",
		"sel-semijoin":   "x := select(fact, 10, 2000)\nRES := semijoin(x, hot)",
		"sel-diff":       "x := select(fact, 10, 2000)\nRES := diff(x, hot)",
		"sel-intersect":  "x := select(fact, 10, 2000)\nRES := intersect(x, hot)",
		"sel-join":       "x := select(fact, 10, 2000)\nRES := join(x, dimv)",
		"sel-fetch":      "x := select(factp, 1, 800)\nRES := join(x, dimd)",
		"sel-semi-join":  "x := select(fact, 10, 2000)\ny := semijoin(x, hot)\nRES := join(y, dimv)",
		"sel-aggr-sum":   "x := select(gf, 50.0, 250.0)\nRES := {sum}(x)",
		"sel-aggr-min":   "x := select(gf, 50.0, 250.0)\nRES := {min}(x)",
		"sel-aggr-count": "x := select(gf, 50.0, 250.0)\nRES := {count}(x)",
		"sel-scalar":     "x := select(gf, 50.0, 250.0)\nRES := {sum}all(x)",
		"sel-join-aggr":  "x := select(fact, 10, 2000)\ny := join(x, dimv)\nRES := {sum}(y)",
		"sel-join-scal":  "x := select(fact, 10, 2000)\ny := join(x, dimv)\nRES := {min}all(y)",
		"sel-eq":         "x := select(fact, 42)\nRES := semijoin(x, hot)",
		"empty-semi":     "x := select(fact, 9000000, 9000001)\nRES := semijoin(x, hot)",
		"empty-aggr":     "x := select(gf, 9000000.0, 9000001.0)\nRES := {sum}(x)",
		"empty-scalar":   "x := select(gf, 9000000.0, 9000001.0)\nRES := {min}all(x)",
		"empty-join":     "x := select(fact, 9000000, 9000001)\nRES := join(x, dimv)",
	}
}

// propsMask compares the logical property bits; the dense bits are excluded
// because run detection is an execution-strategy artifact (a chain that
// composes to a contiguous run through a scattered stage may encode its
// result as a view where stage-at-a-time gathers would not, and vice versa).
const propsMask = bat.HOrdered | bat.TOrdered | bat.HKey | bat.TKey

func assertPipelineBAT(t *testing.T, label string, got, want *bat.BAT) {
	t.Helper()
	assertSameBAT(t, label, got, want)
	if got.Props&propsMask != want.Props&propsMask {
		t.Fatalf("%s: props %v, want %v", label, got.Props&propsMask, want.Props&propsMask)
	}
}

func runPipelineProgram(t *testing.T, label, src string, env Env, o Options) (*Scope, []StmtTrace) {
	t.Helper()
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", label, err)
	}
	scope, traces, err := Exec(NewCtx(nil, o), prog, env)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return scope, traces
}

func TestPipelineParityChains(t *testing.T) {
	for shape, keys := range skewKeys(t) {
		ordered := shape == "zipf-sorted" || shape == "all-one-key"
		env := pipelineEnv(keys, ordered)
		for name, src := range pipelinePrograms() {
			// Materializing reference: pipeline forced off.
			want, wantTraces := runPipelineProgram(t, name, src, env,
				Options{Workers: 1, Pipeline: -1})
			for _, tr := range wantTraces {
				if tr.Algo == "pipeline" {
					t.Fatalf("%s/%s: reference run fused a chain", shape, name)
				}
			}
			for mode, o := range pipelineCtxs() {
				label := fmt.Sprintf("%s/%s/%s", shape, name, mode)
				got, traces := runPipelineProgram(t, label, src, env, o)
				fused := false
				for _, tr := range traces {
					if tr.Algo == "pipeline" {
						fused = true
					}
				}
				if !fused {
					t.Fatalf("%s: chain did not fuse", label)
				}
				wb, _ := want.Lookup("RES")
				gb, ok := got.Lookup("RES")
				if !ok {
					t.Fatalf("%s: RES not bound", label)
				}
				assertPipelineBAT(t, label, gb, wb)
			}
		}
	}
}

// TestPipelineHashSelectSource drives the srcPos source: a cached tail-hash
// accelerator turns the chain head's point select into a position-list
// stream (no scan, no run).
func TestPipelineHashSelectSource(t *testing.T) {
	keys := skewKeys(t)["zipf"]
	env := pipelineEnv(keys, false)
	env["fact"].TailHash() // build + cache: SelectEq and the pipeline source both use it
	src := "x := select(fact, 42)\nRES := semijoin(x, hot)"
	want, _ := runPipelineProgram(t, "hash-src/ref", src, env, Options{Workers: 1, Pipeline: -1})
	for mode, o := range pipelineCtxs() {
		got, traces := runPipelineProgram(t, "hash-src/"+mode, src, env, o)
		fused := false
		for _, tr := range traces {
			fused = fused || tr.Algo == "pipeline"
		}
		if !fused {
			t.Fatalf("hash-src/%s: chain did not fuse", mode)
		}
		wb, _ := want.Lookup("RES")
		gb, _ := got.Lookup("RES")
		assertPipelineBAT(t, "hash-src/"+mode, gb, wb)
	}
}

// TestPipelinePlannerBoundaries pins what must NOT fuse: multi-use
// intermediates, kept intermediates, and post-join filters all fall back to
// materialization (and still produce identical results).
func TestPipelinePlannerBoundaries(t *testing.T) {
	keys := skewKeys(t)["half-hot"]
	env := pipelineEnv(keys, false)
	cases := map[string]string{
		// x used twice: fusing through it would skip a binding another
		// statement reads.
		"multi-use": "x := select(fact, 10, 2000)\na := semijoin(x, hot)\nb := diff(x, hot)\nRES := join(a, dimv)\nRES2 := join(b, dimv)",
		// y is kept (unconsumed name): must materialize.
		"kept-mid": "x := select(fact, 10, 2000)\ny := semijoin(x, hot)",
	}
	for name, src := range cases {
		prog, err := ParseProgram(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		keep := make(map[string]bool)
		for _, k := range prog.Keep {
			keep[k] = true
		}
		chains := planPipeline(prog, keep)
		switch name {
		case "multi-use":
			if len(chains) != 0 {
				t.Fatalf("multi-use: planned %v, want none", chains)
			}
		case "kept-mid":
			// y itself is the terminal of a valid 2-statement chain ending
			// at the kept name — that is fusable (only intermediates must
			// not be kept); verify results match either way.
			if len(chains) != 1 {
				t.Fatalf("kept-mid: planned %v, want the select→semijoin chain", chains)
			}
		}
		want, _ := runPipelineProgram(t, name+"/ref", src, env, Options{Workers: 1, Pipeline: -1})
		got, _ := runPipelineProgram(t, name+"/pipe", src, env, Options{Workers: 8})
		for _, k := range prog.Keep {
			wb, _ := want.Lookup(k)
			gb, ok := got.Lookup(k)
			if !ok {
				t.Fatalf("%s: %s not bound", name, k)
			}
			assertPipelineBAT(t, name+"/"+k, gb, wb)
		}
	}
}

// TestPipelineTraceShape pins the fabricated traces: one per chain
// statement, tagged "pipeline", with the elapsed/fault numbers pooled on the
// terminal.
func TestPipelineTraceShape(t *testing.T) {
	env := pipelineEnv(skewKeys(t)["zipf"], false)
	src := "x := select(fact, 10, 2000)\ny := semijoin(x, hot)\nRES := join(y, dimv)"
	_, traces := runPipelineProgram(t, "trace", src, env, Options{Workers: 1})
	if len(traces) != 3 {
		t.Fatalf("traces = %d, want 3", len(traces))
	}
	for i, tr := range traces {
		if tr.Algo != "pipeline" {
			t.Fatalf("trace %d algo = %q, want pipeline", i, tr.Algo)
		}
		if tr.Index != i {
			t.Fatalf("trace %d index = %d", i, tr.Index)
		}
		if !strings.Contains(tr.Text, ":=") {
			t.Fatalf("trace %d text = %q", i, tr.Text)
		}
	}
	if traces[0].Rows == 0 || traces[1].Rows == 0 || traces[2].Rows == 0 {
		t.Fatalf("zero stream rows in traces: %+v", traces)
	}
}

// TestPipelineGaugeAccounting pins the memory win's accounting shape: a
// fused chain accounts only its terminal result, and the gauge drains back
// to zero either way.
func TestPipelineGaugeAccounting(t *testing.T) {
	env := pipelineEnv(skewKeys(t)["zipf"], false)
	src := "x := select(fact, 10, 2000)\ny := semijoin(x, hot)\nRES := join(y, dimv)"
	run := func(o Options) (*Ctx, *bat.BAT) {
		prog, err := ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		g := &MemGauge{}
		o.Gauge = g
		ctx := NewCtx(nil, o)
		scope, _, err := Exec(ctx, prog, env)
		if err != nil {
			t.Fatal(err)
		}
		ctx.DrainGauge()
		if got := g.Live(); got != 0 {
			t.Fatalf("gauge not drained: %d", got)
		}
		b, _ := scope.Lookup("RES")
		return ctx, b
	}
	mCtx, mRes := run(Options{Workers: 1, Pipeline: -1})
	pCtx, pRes := run(Options{Workers: 1})
	assertPipelineBAT(t, "gauge", pRes, mRes)
	if pCtx.IntermBytes >= mCtx.IntermBytes {
		t.Fatalf("pipeline intermediates %d >= materialized %d", pCtx.IntermBytes, mCtx.IntermBytes)
	}
	if pCtx.PeakBytes > mCtx.PeakBytes {
		t.Fatalf("pipeline peak %d > materialized %d", pCtx.PeakBytes, mCtx.PeakBytes)
	}
}
