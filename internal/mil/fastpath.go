package mil

import (
	"repro/internal/bat"
)

// The typed kernels in internal/bat carry the operators' hot loops; the
// accessors here cover the remaining positional oid fast paths — object
// identifiers are what the flattened representation joins on (Section 3.3).

// oidGetter returns a positional oid accessor for oid-typed columns.
func oidGetter(c bat.Column) (func(int) bat.OID, bool) {
	switch cc := c.(type) {
	case *bat.OIDCol:
		return func(i int) bat.OID { return cc.V[i] }, true
	case *bat.VoidCol:
		return func(i int) bat.OID { return cc.Seq + bat.OID(i) }, true
	}
	return nil, false
}

// syncSemijoinPrecheck detects identical oid head sequences at run time: the
// semijoin then degenerates to a copy (the sync-semijoin of Section 5.1),
// and the discovered correspondence is recorded on the operands for later
// operators.
func syncSemijoinPrecheck(ctx *Ctx, l, r *bat.BAT) (*bat.BAT, bool) {
	if l.Len() != r.Len() || l.Len() == 0 {
		return nil, false
	}
	lh, lok := oidGetter(l.H)
	rh, rok := oidGetter(r.H)
	if !lok || !rok {
		return nil, false
	}
	for i := 0; i < l.Len(); i++ {
		if lh(i) != rh(i) {
			return nil, false
		}
	}
	ctx.chose("sync-semijoin")
	out := bat.New(l.Name+".sel", l.H, l.T, l.Props&filterProps)
	out.SyncWith(l)
	r.SyncWith(l)
	return out, true
}
