package mil

import (
	"repro/internal/bat"
)

// The operators' generic implementations work on boxed values; the accessors
// here unlock allocation-free typed paths for the dominant case — oid
// columns (object identifiers are what the flattened representation joins
// on, Section 3.3).

// oidGetter returns a positional oid accessor for oid-typed columns.
func oidGetter(c bat.Column) (func(int) bat.OID, bool) {
	switch cc := c.(type) {
	case *bat.OIDCol:
		return func(i int) bat.OID { return cc.V[i] }, true
	case *bat.VoidCol:
		return func(i int) bat.OID { return cc.Seq + bat.OID(i) }, true
	}
	return nil, false
}

// hashSemijoinOID is the typed variant of hashSemijoin for oid head columns.
func hashSemijoinOID(ctx *Ctx, l, r *bat.BAT) (*bat.BAT, bool) {
	rh, rok := oidGetter(r.H)
	lh, lok := oidGetter(l.H)
	if !rok || !lok {
		return nil, false
	}
	// Positional pre-check: identical head sequences make the semijoin a
	// copy (the sync-semijoin of Section 5.1, detected at run time).
	if l.Len() == r.Len() && l.Len() > 0 {
		same := true
		for i := 0; i < l.Len(); i++ {
			if lh(i) != rh(i) {
				same = false
				break
			}
		}
		if same {
			ctx.chose("sync-semijoin")
			out := bat.New(l.Name+".sel", l.H, l.T, l.Props&filterProps)
			out.SyncWith(l)
			// record the discovered correspondence for later operators
			r.SyncWith(l)
			return out, true
		}
	}
	ctx.chose("hash-semijoin")
	p := ctx.pager()
	r.H.TouchAll(p)
	set := make(map[bat.OID]struct{}, r.Len())
	for i := 0; i < r.Len(); i++ {
		set[rh(i)] = struct{}{}
	}
	l.H.TouchAll(p)
	var pos []int
	for i := 0; i < l.Len(); i++ {
		if _, ok := set[lh(i)]; ok {
			pos = append(pos, i)
		}
	}
	return gatherPositions(ctx, l.Name+".sel", l, pos), true
}

// hashJoinOID is the typed variant of hashJoin when both join columns are
// oids.
func hashJoinOID(ctx *Ctx, l, r *bat.BAT) (*bat.BAT, bool) {
	rh, rok := oidGetter(r.H)
	lt, lok := oidGetter(l.T)
	if !rok || !lok {
		return nil, false
	}
	ctx.chose("hash-join")
	p := ctx.pager()
	r.H.TouchAll(p)
	idx := make(map[bat.OID][]int32, r.Len())
	for i := 0; i < r.Len(); i++ {
		h := rh(i)
		idx[h] = append(idx[h], int32(i))
	}
	l.T.TouchAll(p)
	var lpos, rpos []int
	for i := 0; i < l.Len(); i++ {
		for _, rp := range idx[lt(i)] {
			lpos = append(lpos, i)
			rpos = append(rpos, int(rp))
		}
	}
	return joinResult(ctx, l, r, lpos, rpos), true
}

// groupUnaryFast assigns group oids with typed hash tables for the common
// tail kinds; it reports false when the tail needs the boxed path.
func groupUnaryFast(b *bat.BAT, out []bat.OID) bool {
	switch t := b.T.(type) {
	case *bat.ChrCol:
		var ids [256]bat.OID
		var seen [256]bool
		var next bat.OID
		for i, c := range t.V {
			if !seen[c] {
				ids[c] = next
				seen[c] = true
				next++
			}
			out[i] = ids[c]
		}
		return true
	case *bat.OIDCol:
		ids := make(map[bat.OID]bat.OID, 64)
		var next bat.OID
		for i, v := range t.V {
			id, ok := ids[v]
			if !ok {
				id = next
				next++
				ids[v] = id
			}
			out[i] = id
		}
		return true
	case *bat.IntCol:
		ids := make(map[int64]bat.OID, 64)
		var next bat.OID
		for i, v := range t.V {
			id, ok := ids[v]
			if !ok {
				id = next
				next++
				ids[v] = id
			}
			out[i] = id
		}
		return true
	case *bat.StrCol:
		ids := make(map[string]bat.OID, 64)
		var next bat.OID
		for i := 0; i < t.Len(); i++ {
			v := t.At(i)
			id, ok := ids[v]
			if !ok {
				id = next
				next++
				ids[v] = id
			}
			out[i] = id
		}
		return true
	}
	return false
}

// aggrOIDFast is the typed set-aggregate for oid heads, covering the
// grouped-aggregation joins of every nest-based TPC-D query.
func aggrOIDFast(ctx *Ctx, fn string, b *bat.BAT) (*bat.BAT, bool) {
	h, ok := oidGetter(b.H)
	if !ok {
		return nil, false
	}
	ctx.chose("hash-aggr")
	accs := make(map[bat.OID]*aggAcc, 64)
	var order []bat.OID
	acc := func(i int) *aggAcc {
		o := h(i)
		a, ok := accs[o]
		if !ok {
			a = &aggAcc{}
			accs[o] = a
			order = append(order, o)
		}
		return a
	}
	switch t := b.T.(type) {
	case *bat.FltCol:
		for i, v := range t.V {
			a := acc(i)
			a.count++
			a.sumF += v
			if !a.first {
				a.min, a.max, a.first, a.kind = bat.F(v), bat.F(v), true, bat.KFlt
			} else {
				if v < a.min.F {
					a.min = bat.F(v)
				}
				if v > a.max.F {
					a.max = bat.F(v)
				}
			}
		}
	case *bat.IntCol:
		for i, v := range t.V {
			a := acc(i)
			a.count++
			a.sumI += v
			a.sumF += float64(v)
			if !a.first {
				a.min, a.max, a.first, a.kind = bat.I(v), bat.I(v), true, bat.KInt
			} else {
				if v < a.min.I {
					a.min = bat.I(v)
				}
				if v > a.max.I {
					a.max = bat.I(v)
				}
			}
		}
	default:
		for i := 0; i < b.Len(); i++ {
			acc(i).add(b.T.Get(i))
		}
	}
	heads := make([]bat.OID, len(order))
	copy(heads, order)
	kind := aggResultKind(fn, b.T.Kind())
	vals := make([]bat.Value, len(order))
	for i, o := range order {
		vals[i] = accs[o].result(fn, b.T.Kind())
	}
	out := bat.New("{"+fn+"}", bat.NewOIDCol(heads), bat.FromValues(kind, vals), bat.HKey)
	if b.Props.Has(bat.HOrdered) {
		out.Props |= bat.HOrdered
	}
	return out, true
}
