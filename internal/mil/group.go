package mil

import (
	"repro/internal/bat"
)

// Unique implements AB.unique: it removes duplicate BUNs, keeping first
// occurrences, so order properties of the operand are preserved. The typed
// path dedupes composite (head, tail) key reps through the bucket+link
// grouper; the boxed map path remains as fallback (and parity reference).
func Unique(ctx *Ctx, b *bat.BAT) *bat.BAT {
	ctx.chose("hash-unique")
	p := ctx.pager()
	b.H.TouchAll(p)
	b.T.TouchAll(p)
	n := b.Len()
	k := workersFor(ctx, n)
	hr, ok1 := bat.NewKeyRepP(b.H, k)
	tr, ok2 := bat.NewKeyRepP(b.T, k)
	if !ok1 || !ok2 {
		return uniqueBoxed(ctx, b)
	}
	eq := bat.PairEq{A: hr, B: tr} // Mix keys always need verifying
	if k > 1 {
		// Partitioned dedup: the first-occurrence rows of the partitioned
		// grouping (ascending by construction) are exactly the BUNs a
		// sequential scan keeps.
		first := bat.BuildGroupFirstRowsPartitionedSched(mixedReps(ctx, hr, tr, n), eq, ctx.sched(n))
		return gatherPositions(ctx, b.Name+".uniq", b, first)
	}
	g := bat.NewGrouper(n)
	var pos []int32
	for i := 0; i < n; i++ {
		if _, fresh := g.Slot(bat.Mix(hr.Rep[i], tr.Rep[i]), int32(i), eq); fresh {
			pos = append(pos, int32(i))
		}
	}
	return gatherPositions(ctx, b.Name+".uniq", b, pos)
}

// mixedReps materializes the composite key reps Mix(a[i], b[i]) in
// parallel; partitioned groupings need the vector up front for the radix
// scatter.
func mixedReps(ctx *Ctx, a, b bat.KeyRep, n int) []uint64 {
	mixed := make([]uint64, n)
	parallelFill(ctx, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			mixed[i] = bat.Mix(a.Rep[i], b.Rep[i])
		}
	})
	return mixed
}

// uniqueBoxed is the boxed-map variant of Unique.
func uniqueBoxed(ctx *Ctx, b *bat.BAT) *bat.BAT {
	type bun struct{ h, t bat.Value }
	seen := make(map[bun]struct{}, b.Len())
	var pos []int
	for i := 0; i < b.Len(); i++ {
		k := bun{b.H.Get(i), b.T.Get(i)}
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		pos = append(pos, i)
	}
	return gatherPositions(ctx, b.Name+".uniq", b, pos)
}

// GroupUnary implements AB.group: {a·o_b | ab ∈ AB ∧ o_b = unique_oid(b)} —
// a fresh oid is handed out for each distinct tail value (Fig. 4). The
// result has the same head (at the same positions) as the operand and is
// positionally synced with it; its tail identifies the group of each BUN.
// This is the primitive behind SQL GROUP BY and MOA nest (Section 4.2,
// "grouping"). Grouper slots are handed out in first-occurrence order, so
// group oids are identical to the boxed implementation's.
func GroupUnary(ctx *Ctx, b *bat.BAT) *bat.BAT {
	ctx.chose("hash-group")
	p := ctx.pager()
	b.T.TouchAll(p)
	n := b.Len()
	out := make([]bat.OID, n)
	k := workersFor(ctx, n)
	if tr, ok := bat.NewKeyRepP(b.T, k); ok {
		eq := tr.Verifier()
		if k > 1 {
			gs := bat.BuildGroupSlotsPartitionedSched(tr.Rep, eq, ctx.sched(n))
			slotsToOIDs(ctx, gs.Slots, out)
		} else {
			g := bat.NewGrouper(n)
			for i := 0; i < n; i++ {
				s, _ := g.Slot(tr.Rep[i], int32(i), eq)
				out[i] = bat.OID(s)
			}
		}
	} else {
		groupTailsBoxed(b, out)
	}
	res := bat.New(b.Name+".grp", b.H, bat.NewOIDCol(out), b.Props&(bat.HOrdered|bat.HKey))
	res.SyncWith(b)
	return res
}

// slotsToOIDs widens group slots into the result oid vector in parallel.
func slotsToOIDs(ctx *Ctx, slots []int32, out []bat.OID) {
	parallelFill(ctx, len(slots), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = bat.OID(slots[i])
		}
	})
}

// groupTailsBoxed assigns group oids per distinct boxed tail value.
func groupTailsBoxed(b *bat.BAT, out []bat.OID) {
	ids := make(map[bat.Value]bat.OID, b.Len())
	var next bat.OID
	for i := 0; i < b.Len(); i++ {
		v := b.T.Get(i)
		id, ok := ids[v]
		if !ok {
			id = next
			next++
			ids[v] = id
		}
		out[i] = id
	}
}

// GroupBinary implements AB.group(CD): it refines an existing grouping g
// with the values of b, handing out a fresh oid per distinct (group, value)
// combination. For groupings on multiple attributes the unary version is
// followed by binary group invocations until all attributes are processed
// (Section 4.2). g and b must be positionally synced (the rewriter
// guarantees this); if they are not known-synced, b is aligned to g's heads
// via hash lookup.
func GroupBinary(ctx *Ctx, g, b *bat.BAT) *bat.BAT {
	ctx.chose("hash-group")
	p := ctx.pager()
	g.T.TouchAll(p)
	b.T.TouchAll(p)
	n := g.Len()
	out := make([]bat.OID, n)

	k := workersFor(ctx, n)
	gr, ok1 := bat.NewKeyRepP(g.T, k)
	br, ok2 := bat.NewKeyRepP(b.T, k)
	if bat.Synced(g, b) && ok1 && ok2 {
		eq := bat.PairEq{A: gr, B: br}
		if k > 1 {
			gs := bat.BuildGroupSlotsPartitionedSched(mixedReps(ctx, gr, br, n), eq, ctx.sched(n))
			slotsToOIDs(ctx, gs.Slots, out)
		} else {
			gp := bat.NewGrouper(n)
			for i := 0; i < n; i++ {
				s, _ := gp.Slot(bat.Mix(gr.Rep[i], br.Rep[i]), int32(i), eq)
				out[i] = bat.OID(s)
			}
		}
	} else {
		groupBinaryBoxed(g, b, out)
	}
	res := bat.New(g.Name+".grp", g.H, bat.NewOIDCol(out), g.Props&(bat.HOrdered|bat.HKey))
	res.SyncWith(g)
	return res
}

// groupBinaryBoxed refines boxed (group, value) pairs through a map; it also
// handles the un-synced case by aligning b's tails to g's heads.
func groupBinaryBoxed(g, b *bat.BAT, out []bat.OID) {
	valueAt := alignedTailAccessor(g, b)
	type refKey struct {
		grp bat.Value
		val bat.Value
	}
	ids := make(map[refKey]bat.OID, g.Len())
	var next bat.OID
	for i := 0; i < g.Len(); i++ {
		k := refKey{g.T.Get(i), valueAt(i)}
		id, ok := ids[k]
		if !ok {
			id = next
			next++
			ids[k] = id
		}
		out[i] = id
	}
}

// alignedTailAccessor returns a function mapping positions of a to the tail
// value of b for the same head; the fast path is positional when the two
// BATs are synced.
func alignedTailAccessor(a, b *bat.BAT) func(i int) bat.Value {
	if bat.Synced(a, b) {
		return func(i int) bat.Value { return b.T.Get(i) }
	}
	idx := make(map[bat.Value]int, b.Len())
	for i := 0; i < b.Len(); i++ {
		h := b.H.Get(i)
		if _, dup := idx[h]; !dup {
			idx[h] = i
		}
	}
	return func(i int) bat.Value {
		j, ok := idx[a.H.Get(i)]
		if !ok {
			return bat.Value{}
		}
		return b.T.Get(j)
	}
}
