package mil

import (
	"repro/internal/bat"
)

// Unique implements AB.unique: it removes duplicate BUNs, keeping first
// occurrences, so order properties of the operand are preserved.
func Unique(ctx *Ctx, b *bat.BAT) *bat.BAT {
	ctx.chose("hash-unique")
	p := ctx.pager()
	b.H.TouchAll(p)
	b.T.TouchAll(p)
	type bun struct{ h, t bat.Value }
	seen := make(map[bun]struct{}, b.Len())
	var pos []int
	for i := 0; i < b.Len(); i++ {
		k := bun{b.H.Get(i), b.T.Get(i)}
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		pos = append(pos, i)
	}
	out := gatherPositions(ctx, b.Name+".uniq", b, pos)
	return out
}

// GroupUnary implements AB.group: {a·o_b | ab ∈ AB ∧ o_b = unique_oid(b)} —
// a fresh oid is handed out for each distinct tail value (Fig. 4). The
// result has the same head (at the same positions) as the operand and is
// positionally synced with it; its tail identifies the group of each BUN.
// This is the primitive behind SQL GROUP BY and MOA nest (Section 4.2,
// "grouping").
func GroupUnary(ctx *Ctx, b *bat.BAT) *bat.BAT {
	ctx.chose("hash-group")
	p := ctx.pager()
	b.T.TouchAll(p)
	out := make([]bat.OID, b.Len())
	if !groupUnaryFast(b, out) {
		ids := make(map[bat.Value]bat.OID, b.Len())
		var next bat.OID
		for i := 0; i < b.Len(); i++ {
			v := b.T.Get(i)
			id, ok := ids[v]
			if !ok {
				id = next
				next++
				ids[v] = id
			}
			out[i] = id
		}
	}
	res := bat.New(b.Name+".grp", b.H, bat.NewOIDCol(out), b.Props&(bat.HOrdered|bat.HKey))
	res.SyncWith(b)
	return res
}

// GroupBinary implements AB.group(CD): it refines an existing grouping g
// with the values of b, handing out a fresh oid per distinct (group, value)
// combination. For groupings on multiple attributes the unary version is
// followed by binary group invocations until all attributes are processed
// (Section 4.2). g and b must be positionally synced (the rewriter
// guarantees this); if they are not known-synced, b is aligned to g's heads
// via hash lookup.
func GroupBinary(ctx *Ctx, g, b *bat.BAT) *bat.BAT {
	ctx.chose("hash-group")
	p := ctx.pager()
	g.T.TouchAll(p)
	b.T.TouchAll(p)

	valueAt := alignedTailAccessor(g, b)

	type refKey struct {
		grp bat.Value
		val bat.Value
	}
	ids := make(map[refKey]bat.OID, g.Len())
	out := make([]bat.OID, g.Len())
	var next bat.OID
	for i := 0; i < g.Len(); i++ {
		k := refKey{g.T.Get(i), valueAt(i)}
		id, ok := ids[k]
		if !ok {
			id = next
			next++
			ids[k] = id
		}
		out[i] = id
	}
	res := bat.New(g.Name+".grp", g.H, bat.NewOIDCol(out), g.Props&(bat.HOrdered|bat.HKey))
	res.SyncWith(g)
	return res
}

// alignedTailAccessor returns a function mapping positions of a to the tail
// value of b for the same head; the fast path is positional when the two
// BATs are synced.
func alignedTailAccessor(a, b *bat.BAT) func(i int) bat.Value {
	if bat.Synced(a, b) {
		return func(i int) bat.Value { return b.T.Get(i) }
	}
	idx := make(map[bat.Value]int, b.Len())
	for i := 0; i < b.Len(); i++ {
		h := b.H.Get(i)
		if _, dup := idx[h]; !dup {
			idx[h] = i
		}
	}
	return func(i int) bat.Value {
		j, ok := idx[a.H.Get(i)]
		if !ok {
			return bat.Value{}
		}
		return b.T.Get(j)
	}
}
