package mil

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bat"
)

func TestRangesPartition(t *testing.T) {
	f := func(nRaw uint16, kRaw uint8) bool {
		n := int(nRaw)
		k := int(kRaw)%24 + 1
		rs := ranges(n, k)
		// contiguous, complete, non-overlapping
		next := 0
		for _, r := range rs {
			if r[0] != next || r[1] <= r[0] {
				return false
			}
			next = r[1]
		}
		return next == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if got := ranges(0, 4); len(got) != 0 {
		t.Fatalf("ranges(0,4) = %v", got)
	}
}

// Parallel iteration must produce bit-identical results to sequential
// execution (Monet's parallel primitives are "relatively coarse-grained to
// preserve efficiency" and deterministic).
func TestParallelSelectMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := parallelMinRows * 2
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = rng.Int63n(1000)
	}
	b := bat.New("x", bat.NewVoid(0, n), bat.NewIntCol(vals), 0)
	lo, hi := bat.I(100), bat.I(300)

	seq := SelectRange(&Ctx{Workers: 1}, b, &lo, &hi, true, false)
	par := SelectRange(&Ctx{Workers: 8}, b, &lo, &hi, true, false)
	if seq.Len() != par.Len() {
		t.Fatalf("len %d vs %d", seq.Len(), par.Len())
	}
	for i := 0; i < seq.Len(); i++ {
		if !bat.Equal(seq.HeadValue(i), par.HeadValue(i)) ||
			!bat.Equal(seq.TailValue(i), par.TailValue(i)) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestParallelMultiplexMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	n := parallelMinRows * 2
	a := make([]float64, n)
	c := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64() * 100
		c[i] = rng.Float64()
	}
	// use strings to force the boxed (non-fast-path) loop
	strs := make([]string, n)
	for i := range strs {
		if rng.Intn(2) == 0 {
			strs[i] = "PROMO X"
		} else {
			strs[i] = "STANDARD Y"
		}
	}
	sb := bat.New("s", bat.NewVoid(0, n), bat.NewStrColFromStrings(strs), 0)
	seq := Multiplex(&Ctx{Workers: 1}, "strstarts", []Operand{BATArg(sb), ConstArg(bat.S("PROMO"))})
	par := Multiplex(&Ctx{Workers: 8}, "strstarts", []Operand{BATArg(sb), ConstArg(bat.S("PROMO"))})
	for i := 0; i < n; i++ {
		if seq.TailValue(i).Bool() != par.TailValue(i).Bool() {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestSmallInputsStaySequential(t *testing.T) {
	if got := workersFor(&Ctx{Workers: 8}, 10); got != 1 {
		t.Fatalf("workersFor(10) = %d", got)
	}
	if got := workersFor(&Ctx{Workers: 8}, parallelMinRows); got != 8 {
		t.Fatalf("workersFor(min) = %d", got)
	}
	if got := workersFor(nil, parallelMinRows); got != 1 {
		t.Fatalf("nil ctx workers = %d", got)
	}
}
