package mil

import (
	"strings"
	"testing"

	"repro/internal/bat"
)

// fig10Script is the Q13 MIL listing of Fig. 10, in the textual notation
// (buffer-management statements omitted, as in the paper's own figure).
const fig10Script = `
# TPC-D Q13 as a hand-written MIL program (Fig. 10)
orders   := select(Order_clerk, "Clerk#88")
items    := join(Item_order, orders)
returns  := semijoin(Item_returnflag, items)
ritems   := select(returns, 'R')
critems  := semijoin(Item_order, ritems)
years    := [year](join(critems, Order_orderdate))
class    := group(years)
INDEX    := join(ritems.mirror, class).unique
YEAR     := join(class.mirror, years).unique
prices   := semijoin(Item_extendedprice, ritems)
discount := semijoin(Item_discount, ritems)
factor   := [-](1.0, discount)
rlprices := [*](prices, factor)
losses   := join(class.mirror, rlprices)
LOSS     := {sum}(losses)
`

func TestParseFig10ScriptRuns(t *testing.T) {
	prog, err := ParseProgram(fig10Script)
	if err != nil {
		t.Fatal(err)
	}
	env := buildQ13Env()
	if _, err := Run(nil, prog, env); err != nil {
		t.Fatalf("run: %v\n%s", err, prog)
	}
	// Same expected result as TestQ13ProgramEndToEnd: 1994->180, 1995->730.
	year, loss := env["YEAR"], env["LOSS"]
	if year == nil || loss == nil {
		t.Fatalf("results missing; keep = %v", prog.Keep)
	}
	got := map[int64]float64{}
	for i := 0; i < loss.Len(); i++ {
		grp := loss.HeadValue(i)
		for j := 0; j < year.Len(); j++ {
			if bat.Equal(year.HeadValue(j), grp) {
				got[year.TailValue(j).I] = loss.TailValue(i).F
			}
		}
	}
	if !almost(got[1994], 180) || !almost(got[1995], 730) {
		t.Fatalf("losses = %v", got)
	}
	// INDEX/YEAR/LOSS are results (never consumed) and must be kept.
	keep := strings.Join(prog.Keep, ",")
	for _, want := range []string{"INDEX", "YEAR", "LOSS"} {
		if !strings.Contains(keep, want) {
			t.Errorf("%s not kept (keep = %s)", want, keep)
		}
	}
}

func TestParseRoundTripThroughPrinter(t *testing.T) {
	prog, err := ParseProgram(fig10Script)
	if err != nil {
		t.Fatal(err)
	}
	// The printer's output must re-parse and produce the same result.
	printed := prog.String()
	prog2, err := ParseProgram(printed)
	if err != nil {
		t.Fatalf("reparse of printer output: %v\n%s", err, printed)
	}
	env1 := buildQ13Env()
	env2 := buildQ13Env()
	if _, err := Run(nil, prog, env1); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(nil, prog2, env2); err != nil {
		t.Fatal(err)
	}
	l1, l2 := env1["LOSS"], env2["LOSS"]
	if l1.Len() != l2.Len() {
		t.Fatalf("results differ after round trip: %d vs %d", l1.Len(), l2.Len())
	}
}

func TestParseOperatorForms(t *testing.T) {
	srcs := []string{
		`x := select(a, 1, 10)`,
		`x := select(a)`,
		`x := sort(a, desc)`,
		`x := slice(sort(a), 5)`,
		`x := union(a, b)`,
		`x := diff(a, b)`,
		`x := intersect(a, b)`,
		`x := group(a, b)`,
		`x := mark(a)`,
		`x := mirror(a)`,
		`x := {count}all(a)`,
		`x := calc *(2, scalar(t))`,
		`x := [if](c, 1.5, -2)`,
		`x := select(a, date("1994-01-01"), date("1995-01-01"))`,
		`x := [snd](a, true)`,
	}
	for _, src := range srcs {
		if _, err := ParseProgram(src); err != nil {
			t.Errorf("%s: %v", src, err)
		}
	}
}

func TestParseErrorsMIL(t *testing.T) {
	srcs := []string{
		`x = select(a, 1)`,        // missing :=
		`:= select(a, 1)`,         // missing dst
		`x := frobnicate(a)`,      // unknown op
		`x := select(a, 1, 2, 3)`, // arity
		`x := join(a)`,            // arity
		`x := [year(a)`,           // unterminated bracket
		`x := {sum(a)`,            // unterminated brace
		`x := select(a, "uncl`,    // unterminated string
		`x := select(a, 'xy')`,    // bad char
		`x := slice(a, b)`,        // non-integer slice
		`x := select(a, 12..3)`,   // bad number
		`x := select((a, 1)`,      // unbalanced
		`9bad := select(a, 1)`,    // bad identifier
		`x := scalar(,)`,          // bad scalar
	}
	for _, src := range srcs {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestParseNestedCallsFlatten(t *testing.T) {
	prog, err := ParseProgram(`x := {sum}(join(group(a).mirror, b))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 4 { // group, mirror, join, {sum}
		t.Fatalf("stmts = %d\n%s", len(prog.Stmts), prog)
	}
	if prog.Stmts[3].Dst != "x" {
		t.Fatalf("final dst = %s", prog.Stmts[3].Dst)
	}
}

func TestParseCommentsAndBlankLines(t *testing.T) {
	prog, err := ParseProgram("\n# only a comment\n\n  x := mark(a)  # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(prog.Stmts))
	}
}
