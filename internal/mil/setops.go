package mil

import (
	"sort"

	"repro/internal/bat"
)

// The MOA set operations work on sets of identified values, so the BAT-level
// set operations match elements on their identifier — the head column
// (Section 3.3: identifiers are unique within a value set).

// Union implements set union on identified value sets: all BUNs of a, plus
// the BUNs of b whose head does not occur in a. Duplicate heads within b
// itself are also collapsed (identifiers are unique within a set).
func Union(ctx *Ctx, a, b *bat.BAT) *bat.BAT {
	ctx.chose("hash-union")
	p := ctx.pager()
	a.H.TouchAll(p)
	a.T.TouchAll(p)
	b.H.TouchAll(p)
	b.T.TouchAll(p)
	seen := make(map[bat.Value]struct{}, a.Len()+b.Len())
	heads := make([]bat.Value, 0, a.Len()+b.Len())
	tails := make([]bat.Value, 0, a.Len()+b.Len())
	add := func(x *bat.BAT) {
		for i := 0; i < x.Len(); i++ {
			h := x.H.Get(i)
			if _, ok := seen[h]; ok {
				continue
			}
			seen[h] = struct{}{}
			heads = append(heads, h)
			tails = append(tails, x.T.Get(i))
		}
	}
	add(a)
	add(b)
	hk := a.H.Kind()
	tk := a.T.Kind()
	if a.Len() == 0 {
		hk, tk = b.H.Kind(), b.T.Kind()
	}
	if hk == bat.KVoid {
		hk = bat.KOID
	}
	if tk == bat.KVoid {
		tk = bat.KOID
	}
	return bat.New(a.Name+".union", bat.FromValues(hk, heads), bat.FromValues(tk, tails), bat.HKey)
}

// Diff implements set difference on identified value sets: the BUNs of a
// whose head does not occur in b. It is the anti-probe of the semijoin:
// the same bucket+link accelerator on b's head, keeping the misses.
func Diff(ctx *Ctx, a, b *bat.BAT) *bat.BAT {
	ctx.chose("hash-diff")
	p := ctx.pager()
	b.H.TouchAll(p)
	a.H.TouchAll(p)
	n := a.Len()
	idx := b.HeadHashSched(ctx.sched(b.Len()))
	if pr, ok := idx.NewProbe(a.H); ok {
		pos := parallelCollect32(ctx, n, n,
			func(lo, hi int, out []int32) []int32 {
				return idx.FilterRange(pr, lo, hi, false, out)
			})
		return gatherPositions(ctx, a.Name+".diff", a, pos)
	}
	var pos []int32
	for i := 0; i < n; i++ {
		if len(idx.Lookup(a.H.Get(i))) == 0 {
			pos = append(pos, int32(i))
		}
	}
	return gatherPositions(ctx, a.Name+".diff", a, pos)
}

// Intersect implements set intersection on identified value sets; on the
// flattened representation it coincides with the semijoin (the "beneficial
// effect" of Section 4.3.2 applies to all nested set operations).
func Intersect(ctx *Ctx, a, b *bat.BAT) *bat.BAT {
	out := Semijoin(ctx, a, b)
	if ctx != nil {
		ctx.lastAlgo += " (intersect)"
	}
	return out
}

// SortTail reorders b on its tail values, ascending or descending. It backs
// MOA's sort[expr] operator (needed by the TPC-D top-N queries).
func SortTail(ctx *Ctx, b *bat.BAT, desc bool) *bat.BAT {
	ctx.chose("sort")
	p := ctx.pager()
	b.T.TouchAll(p)
	b.H.TouchAll(p)
	n := b.Len()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	valueLess := tailLess(b.T)
	less := func(i, j int) bool { return valueLess(perm[i], perm[j]) }
	if desc {
		less = func(i, j int) bool { return valueLess(perm[j], perm[i]) }
	}
	sort.SliceStable(perm, less)
	out := bat.New(b.Name+".sort", bat.Gather(b.H, perm), bat.Gather(b.T, perm), 0)
	if !desc {
		out.Props |= bat.TOrdered
	}
	out.Props |= b.Props & (bat.HKey | bat.TKey)
	return out
}

func tailLess(t bat.Column) func(i, j int) bool {
	switch c := t.(type) {
	case *bat.IntCol:
		return func(i, j int) bool { return c.V[i] < c.V[j] }
	case *bat.FltCol:
		return func(i, j int) bool { return c.V[i] < c.V[j] }
	case *bat.OIDCol:
		return func(i, j int) bool { return c.V[i] < c.V[j] }
	case *bat.DateCol:
		return func(i, j int) bool { return c.V[i] < c.V[j] }
	case *bat.ChrCol:
		return func(i, j int) bool { return c.V[i] < c.V[j] }
	case *bat.StrCol:
		return func(i, j int) bool { return c.At(i) < c.At(j) }
	default:
		return func(i, j int) bool { return bat.Less(t.Get(i), t.Get(j)) }
	}
}
