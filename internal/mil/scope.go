package mil

import (
	"repro/internal/bat"
)

// EnvReader is read-only variable resolution: what result materialization
// and other consumers need from an execution environment. Both a plain Env
// and a layered Scope satisfy it.
type EnvReader interface {
	Lookup(name string) (*bat.BAT, bool)
}

// Lookup implements EnvReader for a flat environment.
func (e Env) Lookup(name string) (*bat.BAT, bool) {
	b, ok := e[name]
	return b, ok
}

// Scope is the two-level execution environment of one query: Vars holds the
// query's own bindings (intermediates and results), layered over Base, the
// shared database environment, which is read but never written. Layering
// replaces the per-query copy of the whole database env map — sessions
// resolve base BATs through the shared map directly, so starting a query
// costs O(1) instead of O(|database|), and concurrent sessions cannot
// pollute each other: every write lands in the session-private Vars level.
type Scope struct {
	Base EnvReader // shared, read-only; never released or re-accounted
	Vars Env       // per-query bindings; shadow Base on name collision
}

// NewScope returns a scope over the shared base env with a Vars level
// pre-sized for hint bindings.
func NewScope(base EnvReader, hint int) *Scope {
	return &Scope{Base: base, Vars: make(Env, hint)}
}

// Lookup implements EnvReader: the query's own bindings shadow the base.
func (s *Scope) Lookup(name string) (*bat.BAT, bool) {
	if b, ok := s.Vars[name]; ok {
		return b, true
	}
	if s.Base == nil {
		return nil, false
	}
	return s.Base.Lookup(name)
}
