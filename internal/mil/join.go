package mil

import (
	"encoding/binary"
	"math"

	"repro/internal/bat"
)

// Join implements AB.join(CD): {ad | ab ∈ AB ∧ cd ∈ CD ∧ b = c}. The
// equi-join projects out the join columns to stay closed in the binary model
// (Section 4.2). Variants:
//
//   - fetch-join: CD has a dense head, so matching is positional array
//     lookup;
//   - merge-join: AB's tail and CD's head are both ordered;
//   - hash-join: fallback, hash accelerator on CD's head (built and cached
//     on first use, like Monet's run-time accelerator construction).
//
// All variants run as typed kernels over the columns' backing slices; boxed
// loops remain only as fallbacks for column pairs without a typed path.
func Join(ctx *Ctx, l, r *bat.BAT) *bat.BAT {
	if out, ok := syncJoin(ctx, l, r); ok {
		return out
	}
	if out, ok := dvJoin(ctx, l, r); ok {
		return out
	}
	switch {
	case r.KnownProps().Has(bat.HDense):
		return fetchJoin(ctx, l, r)
	case l.DetectTailProps().Has(bat.TOrdered):
		// The left tail is ordered (declared, or recovered by the detection
		// scan on a stripped intermediate) — worth scanning the right head
		// too: a dense or ordered discovery upgrades the variant.
		switch rp := r.DetectHeadProps(); {
		case rp.Has(bat.HDense):
			return fetchJoin(ctx, l, r)
		case rp.Has(bat.HOrdered):
			return mergeJoin(ctx, l, r)
		}
		return hashJoin(ctx, l, r)
	default:
		return hashJoin(ctx, l, r)
	}
}

// dvJoin joins through the right operand's datavector accelerator: an
// attribute BAT stored tail-ordered answers oid→value probes in O(1) via its
// extent+vector (Section 5.2), so joining a list of oids against it needs
// neither hashing nor sorting. This is the join-side counterpart of the
// datavector semijoin.
func dvJoin(ctx *Ctx, l, r *bat.BAT) (*bat.BAT, bool) {
	dv := r.Datavector()
	if dv == nil {
		return nil, false
	}
	lt, ok := oidGetter(l.T)
	if !ok {
		return nil, false
	}
	ctx.chose("datavector-join")
	p := ctx.pager()
	l.T.TouchAll(p)
	n := l.Len()
	lpos := make([]int32, 0, n)
	vpos := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if pos, hit := dv.Probe(p, lt(i)); hit {
			lpos = append(lpos, int32(i))
			vpos = append(vpos, int32(pos))
			if p != nil {
				dv.Vector.TouchAt(p, pos)
			}
		}
	}
	out := bat.New(l.Name+".join", bat.Gather32(l.H, lpos), bat.Gather32(dv.Vector, vpos), 0)
	if l.Props.Has(bat.HOrdered) {
		out.Props |= bat.HOrdered
	}
	if l.Props.Has(bat.HKey) {
		out.Props |= bat.HKey // attribute heads are unique: ≤ 1 match per row
	}
	if out.Len() == l.Len() {
		out.SyncWith(l)
	}
	return out, true
}

// joinResult assembles the output BAT from matched (left position, right
// position) pairs, applying the join property rules: output BUNs follow left
// scan order, so the left head's order carries over; the left head stays key
// only if no left row matched more than one right row, which is guaranteed
// when the right head is key.
func joinResult(ctx *Ctx, l, r *bat.BAT, lpos, rpos []int32) *bat.BAT {
	p := ctx.pager()
	if p != nil {
		for i := range lpos {
			l.H.TouchAt(p, int(lpos[i]))
			r.T.TouchAt(p, int(rpos[i]))
		}
	}
	out := bat.New(l.Name+".join", bat.Gather32(l.H, lpos), bat.Gather32(r.T, rpos), 0)
	if l.Props.Has(bat.HOrdered) {
		out.Props |= bat.HOrdered
	}
	if l.Props.Has(bat.HKey) && r.KnownProps().Has(bat.HKey) {
		out.Props |= bat.HKey
	}
	// When every left row found exactly one partner, the output is
	// positionally aligned with the left operand.
	if out.Len() == l.Len() && r.KnownProps().Has(bat.HKey) {
		out.SyncWith(l)
		out.Props |= l.Props & (bat.HOrdered | bat.HKey)
	}
	return out
}

// joinCap estimates the match count for pre-sizing the position buffers: a
// key right head caps matches at one per left row; otherwise the accelerator
// cardinality gives the average duplicate factor.
func joinCap(l, r *bat.BAT, idx *bat.HashIndex) int {
	n := l.Len()
	if r.KnownProps().Has(bat.HKey) {
		return n
	}
	if c := idx.Card(); c > 0 {
		if c == r.Len() {
			// The accelerator proved head uniqueness as a side effect of
			// its cardinality count; remember it for later dispatches.
			r.NoteHeadKey()
		}
		dup := (r.Len() + c - 1) / c
		est := int64(n) * int64(dup)
		if lim := int64(n) * 8; est > lim {
			est = lim
		}
		if est > 1<<24 {
			est = 1 << 24
		}
		return int(est)
	}
	return n
}

// syncJoinMatch reports whether join(l, r) degenerates to positional
// pairing: equal-length duplicate-free oid join columns that correspond
// position by position. The O(n) verification scan bails at the first
// mismatch. Shared by syncJoin and the pipeline planner (a join head that
// would sync must not fuse — streaming would replace the zero-copy pairing
// with a hash build over r).
func syncJoinMatch(l, r *bat.BAT) bool {
	if l.Len() != r.Len() || l.Len() == 0 {
		return false
	}
	// Positional pairing is the complete join only if the join column is
	// duplicate-free; with duplicates every cross match must be produced.
	if !l.Props.Has(bat.TKey) && !r.Props.Has(bat.HKey) {
		return false
	}
	lt, ok1 := oidGetter(l.T)
	rh, ok2 := oidGetter(r.H)
	if !ok1 || !ok2 {
		return false
	}
	n := l.Len()
	for i := 0; i < n; i++ {
		if lt(i) != rh(i) {
			return false
		}
	}
	return true
}

// syncJoin recognizes the case where l's tail and r's head correspond
// position by position (e.g. join(class.mirror, values) when the grouping
// and the value set stem from the same candidate): the join degenerates to
// pairing l's head with r's tail, zero-copy.
func syncJoin(ctx *Ctx, l, r *bat.BAT) (*bat.BAT, bool) {
	if !syncJoinMatch(l, r) {
		return nil, false
	}
	ctx.chose("sync-join")
	p := ctx.pager()
	l.T.TouchAll(p)
	r.H.TouchAll(p)
	out := bat.New(l.Name+".join", l.H, r.T, 0)
	out.Props |= l.Props & (bat.HOrdered | bat.HKey)
	out.Props |= r.Props & (bat.TOrdered | bat.TKey)
	out.SyncWith(l)
	return out, true
}

func fetchJoin(ctx *Ctx, l, r *bat.BAT) *bat.BAT {
	ctx.chose("fetch-join")
	p := ctx.pager()
	l.T.TouchAll(p)
	var seq bat.OID
	switch h := r.H.(type) {
	case *bat.VoidCol:
		seq = h.Seq
	case *bat.OIDCol:
		if len(h.V) > 0 {
			seq = h.V[0]
		}
	default:
		if r.Len() > 0 {
			seq = r.H.Get(0).OID()
		}
	}
	n := r.Len()
	nl := l.Len()
	lpos := make([]int32, 0, nl)
	rpos := make([]int32, 0, nl)
	if t, ok := l.T.(*bat.OIDCol); ok {
		for i, v := range t.V {
			idx := int(v) - int(seq)
			if idx >= 0 && idx < n {
				lpos = append(lpos, int32(i))
				rpos = append(rpos, int32(idx))
			}
		}
	} else {
		for i := 0; i < nl; i++ {
			idx := int(l.T.Get(i).I) - int(seq)
			if idx >= 0 && idx < n {
				lpos = append(lpos, int32(i))
				rpos = append(rpos, int32(idx))
			}
		}
	}
	return joinResult(ctx, l, r, lpos, rpos)
}

func mergeJoin(ctx *Ctx, l, r *bat.BAT) *bat.BAT {
	ctx.chose("merge-join")
	p := ctx.pager()
	l.T.TouchAll(p)
	r.H.TouchAll(p)
	hint := l.Len()
	lpos := make([]int32, 0, hint)
	rpos := make([]int32, 0, hint)
	if lp, rp, ok := bat.MergeJoinPositions(l.T, r.H, lpos, rpos); ok {
		return joinResult(ctx, l, r, lp, rp)
	}
	// boxed fallback: column pair without a typed path
	i, j := 0, 0
	nl, nr := l.Len(), r.Len()
	for i < nl && j < nr {
		c := bat.Compare(l.T.Get(i), r.H.Get(j))
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// emit the full group product for this key
			j2 := j
			for j2 < nr && bat.Compare(l.T.Get(i), r.H.Get(j2)) == 0 {
				lpos = append(lpos, int32(i))
				rpos = append(rpos, int32(j2))
				j2++
			}
			i++
		}
	}
	return joinResult(ctx, l, r, lpos, rpos)
}

func hashJoin(ctx *Ctx, l, r *bat.BAT) *bat.BAT {
	ctx.chose("hash-join")
	p := ctx.pager()
	r.H.TouchAll(p)
	l.T.TouchAll(p)
	// Accelerator construction radix-partitions above the kernel threshold
	// and parallelizes across the context's workers (sized by the build
	// side); every degree builds the identical index.
	idx := r.HeadHashSched(ctx.sched(r.Len()))
	n := l.Len()
	if pr, ok := idx.NewProbe(l.T); ok {
		lpos, rpos := parallelPairs(ctx, n, joinCap(l, r, idx),
			func(lo, hi int, lp, rp []int32) ([]int32, []int32) {
				return idx.JoinRange(pr, lo, hi, lp, rp)
			})
		return joinResult(ctx, l, r, lpos, rpos)
	}
	// boxed fallback: probe kind without a typed path into the accelerator
	var lpos, rpos []int32
	for i := 0; i < n; i++ {
		for _, rp := range idx.Lookup(l.T.Get(i)) {
			lpos = append(lpos, int32(i))
			rpos = append(rpos, rp)
		}
	}
	return joinResult(ctx, l, r, lpos, rpos)
}

// JoinMulti performs an equi-join on composite keys: lKeys and rKeys are
// parallel lists of key value sets [elemid, keyval]. Key BATs on the same
// side are matched on their HEAD ids (they may be stored in different
// physical orders), and elements missing any key are dropped. It returns the
// matching (left id, right id) pairs; the rewriter uses it for MOA's general
// join[pred](A,B) on multi-attribute predicates (e.g. TPC-D Q9's
// (supplier, part) lookup into the supplies set, or Q2's (part, mincost)).
// The key arity is arbitrary: composite keys are encoded into a byte string
// per element, so four-attribute (and wider) predicates work unchanged.
func JoinMulti(ctx *Ctx, lKeys, rKeys []*bat.BAT) (lids, rids []bat.Value) {
	ctx.chose("hash-join")
	if len(lKeys) == 0 || len(lKeys) != len(rKeys) {
		return nil, nil
	}
	p := ctx.pager()
	type entry struct {
		id  bat.Value
		key string
	}
	// One nonce across both sides: every NaN key gets a globally fresh
	// salt, so NaNs never match — not within a side, not across sides.
	var nanNonce uint64
	// compose per-side entries aligned on head ids
	compose := func(keys []*bat.BAT) []entry {
		for _, k := range keys {
			k.H.TouchAll(p)
			k.T.TouchAll(p)
		}
		base := keys[0]
		accessors := make([]func(i int) (bat.Value, bool), len(keys))
		for j, k := range keys {
			if j == 0 {
				accessors[j] = func(i int) (bat.Value, bool) { return base.T.Get(i), true }
				continue
			}
			if bat.Synced(base, k) {
				kk := k
				accessors[j] = func(i int) (bat.Value, bool) { return kk.T.Get(i), true }
				continue
			}
			idx := make(map[bat.Value]int, k.Len())
			for i := 0; i < k.Len(); i++ {
				h := k.H.Get(i)
				if _, dup := idx[h]; !dup {
					idx[h] = i
				}
			}
			kk := k
			accessors[j] = func(i int) (bat.Value, bool) {
				pos, ok := idx[base.H.Get(i)]
				if !ok {
					return bat.Value{}, false
				}
				return kk.T.Get(pos), true
			}
		}
		out := make([]entry, 0, base.Len())
		var buf []byte
		for i := 0; i < base.Len(); i++ {
			buf = buf[:0]
			ok := true
			for _, acc := range accessors {
				v, has := acc(i)
				if !has {
					ok = false
					break
				}
				buf = encodeKeyValue(buf, v, &nanNonce)
			}
			if ok {
				out = append(out, entry{id: normHeadID(base.H.Get(i)), key: string(buf)})
			}
		}
		return out
	}

	rEntries := compose(rKeys)
	m := make(map[string][]bat.Value, len(rEntries))
	for _, e := range rEntries {
		m[e.key] = append(m[e.key], e.id)
	}
	for _, e := range compose(lKeys) {
		for _, rid := range m[e.key] {
			lids = append(lids, e.id)
			rids = append(rids, rid)
		}
	}
	return lids, rids
}

// encodeKeyValue appends an injective byte encoding of v: kind tag, the
// fixed-width payloads, and the length-prefixed string payload. Encoded
// equality coincides with Value equality under Go map-key semantics: -0
// normalizes to +0 (one key), and a NaN is salted with a fresh nonce so it
// never equals any key — not even itself — exactly as a map keyed on the
// old compositeKey struct behaved.
func encodeKeyValue(buf []byte, v bat.Value, nanNonce *uint64) []byte {
	f := v.F
	if f == 0 {
		f = 0
	}
	bits := math.Float64bits(f)
	if math.IsNaN(f) {
		*nanNonce++
		bits = *nanNonce
		buf = append(buf, 0xff) // distinct tag: nonce space must not collide
	}
	buf = append(buf, byte(v.K))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I))
	buf = binary.LittleEndian.AppendUint64(buf, bits)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.S)))
	return append(buf, v.S...)
}

// normHeadID boxes void heads as oids so ids compare uniformly.
func normHeadID(v bat.Value) bat.Value {
	if v.K == bat.KVoid {
		return bat.O(bat.OID(v.I))
	}
	return v
}
