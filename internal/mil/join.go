package mil

import (
	"repro/internal/bat"
)

// Join implements AB.join(CD): {ad | ab ∈ AB ∧ cd ∈ CD ∧ b = c}. The
// equi-join projects out the join columns to stay closed in the binary model
// (Section 4.2). Variants:
//
//   - fetch-join: CD has a dense head, so matching is positional array
//     lookup;
//   - merge-join: AB's tail and CD's head are both ordered;
//   - hash-join: fallback, hash accelerator on CD's head (built and cached
//     on first use, like Monet's run-time accelerator construction).
func Join(ctx *Ctx, l, r *bat.BAT) *bat.BAT {
	if out, ok := syncJoin(ctx, l, r); ok {
		return out
	}
	if out, ok := dvJoin(ctx, l, r); ok {
		return out
	}
	switch {
	case r.Props.Has(bat.HDense):
		return fetchJoin(ctx, l, r)
	case l.Props.Has(bat.TOrdered) && r.Props.Has(bat.HOrdered):
		return mergeJoin(ctx, l, r)
	default:
		return hashJoin(ctx, l, r)
	}
}

// dvJoin joins through the right operand's datavector accelerator: an
// attribute BAT stored tail-ordered answers oid→value probes in O(1) via its
// extent+vector (Section 5.2), so joining a list of oids against it needs
// neither hashing nor sorting. This is the join-side counterpart of the
// datavector semijoin.
func dvJoin(ctx *Ctx, l, r *bat.BAT) (*bat.BAT, bool) {
	dv := r.Datavector()
	if dv == nil {
		return nil, false
	}
	lt, ok := oidGetter(l.T)
	if !ok {
		return nil, false
	}
	ctx.chose("datavector-join")
	p := ctx.pager()
	l.T.TouchAll(p)
	n := l.Len()
	lpos := make([]int, 0, n)
	vpos := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if pos, hit := dv.Probe(p, lt(i)); hit {
			lpos = append(lpos, i)
			vpos = append(vpos, pos)
			dv.Vector.TouchAt(p, pos)
		}
	}
	out := bat.New(l.Name+".join", bat.Gather(l.H, lpos), bat.Gather(dv.Vector, vpos), 0)
	if l.Props.Has(bat.HOrdered) {
		out.Props |= bat.HOrdered
	}
	if l.Props.Has(bat.HKey) {
		out.Props |= bat.HKey // attribute heads are unique: ≤ 1 match per row
	}
	if out.Len() == l.Len() {
		out.SyncWith(l)
	}
	return out, true
}

// joinResult assembles the output BAT from matched (left position, right
// position) pairs, applying the join property rules: output BUNs follow left
// scan order, so the left head's order carries over; the left head stays key
// only if no left row matched more than one right row, which is guaranteed
// when the right head is key.
func joinResult(ctx *Ctx, l, r *bat.BAT, lpos, rpos []int) *bat.BAT {
	p := ctx.pager()
	if p != nil {
		for i := range lpos {
			l.H.TouchAt(p, lpos[i])
			r.T.TouchAt(p, rpos[i])
		}
	}
	out := bat.New(l.Name+".join", bat.Gather(l.H, lpos), bat.Gather(r.T, rpos), 0)
	if l.Props.Has(bat.HOrdered) {
		out.Props |= bat.HOrdered
	}
	if l.Props.Has(bat.HKey) && r.Props.Has(bat.HKey) {
		out.Props |= bat.HKey
	}
	// When every left row found exactly one partner, the output is
	// positionally aligned with the left operand.
	if out.Len() == l.Len() && r.Props.Has(bat.HKey) {
		out.SyncWith(l)
		out.Props |= l.Props & (bat.HOrdered | bat.HKey)
	}
	return out
}

// syncJoin recognizes the case where l's tail and r's head correspond
// position by position (e.g. join(class.mirror, values) when the grouping
// and the value set stem from the same candidate): the join degenerates to
// pairing l's head with r's tail, zero-copy. The O(n) verification scan is
// attempted only for equal-length oid columns and bails out at the first
// mismatch.
func syncJoin(ctx *Ctx, l, r *bat.BAT) (*bat.BAT, bool) {
	if l.Len() != r.Len() || l.Len() == 0 {
		return nil, false
	}
	// Positional pairing is the complete join only if the join column is
	// duplicate-free; with duplicates every cross match must be produced.
	if !l.Props.Has(bat.TKey) && !r.Props.Has(bat.HKey) {
		return nil, false
	}
	lt, ok1 := oidGetter(l.T)
	rh, ok2 := oidGetter(r.H)
	if !ok1 || !ok2 {
		return nil, false
	}
	n := l.Len()
	for i := 0; i < n; i++ {
		if lt(i) != rh(i) {
			return nil, false
		}
	}
	ctx.chose("sync-join")
	p := ctx.pager()
	l.T.TouchAll(p)
	r.H.TouchAll(p)
	out := bat.New(l.Name+".join", l.H, r.T, 0)
	out.Props |= l.Props & (bat.HOrdered | bat.HKey)
	out.Props |= r.Props & (bat.TOrdered | bat.TKey)
	out.SyncWith(l)
	return out, true
}

func fetchJoin(ctx *Ctx, l, r *bat.BAT) *bat.BAT {
	ctx.chose("fetch-join")
	p := ctx.pager()
	l.T.TouchAll(p)
	var seq bat.OID
	switch h := r.H.(type) {
	case *bat.VoidCol:
		seq = h.Seq
	case *bat.OIDCol:
		if len(h.V) > 0 {
			seq = h.V[0]
		}
	default:
		if r.Len() > 0 {
			seq = r.H.Get(0).OID()
		}
	}
	n := r.Len()
	var lpos, rpos []int
	if t, ok := l.T.(*bat.OIDCol); ok {
		for i, v := range t.V {
			idx := int(v) - int(seq)
			if idx >= 0 && idx < n {
				lpos = append(lpos, i)
				rpos = append(rpos, idx)
			}
		}
	} else {
		for i := 0; i < l.Len(); i++ {
			idx := int(l.T.Get(i).I) - int(seq)
			if idx >= 0 && idx < n {
				lpos = append(lpos, i)
				rpos = append(rpos, idx)
			}
		}
	}
	return joinResult(ctx, l, r, lpos, rpos)
}

func mergeJoin(ctx *Ctx, l, r *bat.BAT) *bat.BAT {
	ctx.chose("merge-join")
	p := ctx.pager()
	l.T.TouchAll(p)
	r.H.TouchAll(p)
	var lpos, rpos []int
	i, j := 0, 0
	nl, nr := l.Len(), r.Len()
	for i < nl && j < nr {
		c := bat.Compare(l.T.Get(i), r.H.Get(j))
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// emit the full group product for this key
			j2 := j
			for j2 < nr && bat.Compare(l.T.Get(i), r.H.Get(j2)) == 0 {
				lpos = append(lpos, i)
				rpos = append(rpos, j2)
				j2++
			}
			i++
		}
	}
	return joinResult(ctx, l, r, lpos, rpos)
}

func hashJoin(ctx *Ctx, l, r *bat.BAT) *bat.BAT {
	// Prefer an existing (persistent, cached) hash accelerator; otherwise
	// the typed oid path beats building a boxed hash table.
	if !r.HasHeadHash() {
		if out, ok := hashJoinOID(ctx, l, r); ok {
			return out
		}
	}
	ctx.chose("hash-join")
	p := ctx.pager()
	r.H.TouchAll(p)
	idx := r.HeadHash()
	l.T.TouchAll(p)
	var lpos, rpos []int
	for i := 0; i < l.Len(); i++ {
		for _, rp := range idx.Lookup(l.T.Get(i)) {
			lpos = append(lpos, i)
			rpos = append(rpos, int(rp))
		}
	}
	return joinResult(ctx, l, r, lpos, rpos)
}

// JoinMulti performs an equi-join on composite keys: lKeys and rKeys are
// parallel lists of key value sets [elemid, keyval]. Key BATs on the same
// side are matched on their HEAD ids (they may be stored in different
// physical orders), and elements missing any key are dropped. It returns the
// matching (left id, right id) pairs; the rewriter uses it for MOA's general
// join[pred](A,B) on multi-attribute predicates (e.g. TPC-D Q9's
// (supplier, part) lookup into the supplies set, or Q2's (part, mincost)).
func JoinMulti(ctx *Ctx, lKeys, rKeys []*bat.BAT) (lids, rids []bat.Value) {
	ctx.chose("hash-join")
	if len(lKeys) == 0 || len(lKeys) != len(rKeys) {
		return nil, nil
	}
	p := ctx.pager()
	// compositeKey covers up to three key attributes — bat.Value is a
	// comparable struct, so composite keys need no rendering. The TPC-D
	// suite needs at most two.
	type compositeKey struct{ a, b, c bat.Value }
	type entry struct {
		id  bat.Value
		key compositeKey
	}
	if len(lKeys) > 3 {
		panic("mil: joinmulti supports at most three key attributes")
	}
	// compose per-side entries aligned on head ids
	compose := func(keys []*bat.BAT) []entry {
		for _, k := range keys {
			k.H.TouchAll(p)
			k.T.TouchAll(p)
		}
		base := keys[0]
		accessors := make([]func(i int) (bat.Value, bool), len(keys))
		for j, k := range keys {
			if j == 0 {
				accessors[j] = func(i int) (bat.Value, bool) { return base.T.Get(i), true }
				continue
			}
			if bat.Synced(base, k) {
				kk := k
				accessors[j] = func(i int) (bat.Value, bool) { return kk.T.Get(i), true }
				continue
			}
			idx := make(map[bat.Value]int, k.Len())
			for i := 0; i < k.Len(); i++ {
				h := k.H.Get(i)
				if _, dup := idx[h]; !dup {
					idx[h] = i
				}
			}
			kk := k
			accessors[j] = func(i int) (bat.Value, bool) {
				pos, ok := idx[base.H.Get(i)]
				if !ok {
					return bat.Value{}, false
				}
				return kk.T.Get(pos), true
			}
		}
		out := make([]entry, 0, base.Len())
		for i := 0; i < base.Len(); i++ {
			var key compositeKey
			ok := true
			for j, acc := range accessors {
				v, has := acc(i)
				if !has {
					ok = false
					break
				}
				switch j {
				case 0:
					key.a = v
				case 1:
					key.b = v
				case 2:
					key.c = v
				}
			}
			if ok {
				out = append(out, entry{id: normHeadID(base.H.Get(i)), key: key})
			}
		}
		return out
	}

	rEntries := compose(rKeys)
	m := make(map[compositeKey][]bat.Value, len(rEntries))
	for _, e := range rEntries {
		m[e.key] = append(m[e.key], e.id)
	}
	for _, e := range compose(lKeys) {
		for _, rid := range m[e.key] {
			lids = append(lids, e.id)
			rids = append(rids, rid)
		}
	}
	return lids, rids
}

// normHeadID boxes void heads as oids so ids compare uniformly.
func normHeadID(v bat.Value) bat.Value {
	if v.K == bat.KVoid {
		return bat.O(bat.OID(v.I))
	}
	return v
}
