// Package relational is the non-decomposed comparator used to put the
// flattened Monet execution in context, standing in for the IBM DB2 numbers
// the paper quotes (Section 6, Fig. 9) and for the E_rel side of the
// Section 5.2.2 cost model: an N-ary slotted row store with inverted-list
// indexes and a straightforward select-project-join-group executor.
package relational

import (
	"sort"

	"repro/internal/bat"
	"repro/internal/storage"
	"repro/internal/tpcd"
)

// Table is an N-ary table of boxed rows. Rows are fixed-width for the fault
// model: width = (ncols+1) * w, matching the cost model's C_rel.
type Table struct {
	Name string
	Cols []string
	Rows [][]bat.Value

	heap     storage.HeapID
	rowWidth int64
	indexes  map[int]*Index
}

// NewTable creates an empty table with the given column names.
func NewTable(name string, cols ...string) *Table {
	return &Table{
		Name:     name,
		Cols:     cols,
		heap:     storage.NextHeapID(),
		rowWidth: int64((len(cols) + 1) * 4),
		indexes:  map[int]*Index{},
	}
}

// Append adds a row.
func (t *Table) Append(row ...bat.Value) { t.Rows = append(t.Rows, row) }

// Col returns the position of a named column (-1 if absent).
func (t *Table) Col(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Scan visits every row sequentially, touching each page once.
func (t *Table) Scan(p *storage.Pager, visit func(id int, row []bat.Value)) {
	p.TouchRange(t.heap, 0, int64(len(t.Rows))*t.rowWidth)
	for i, r := range t.Rows {
		visit(i, r)
	}
}

// Fetch retrieves one row by id — an unclustered access touching the row's
// page (the second term of E_rel).
func (t *Table) Fetch(p *storage.Pager, id int) []bat.Value {
	p.Touch(t.heap, int64(id)*t.rowWidth)
	return t.Rows[id]
}

// ByteSize reports the table's storage footprint.
func (t *Table) ByteSize() int64 { return int64(len(t.Rows)) * t.rowWidth }

// Index is an inverted list on one column: an ordered array of
// [value, row-pointer] records, as the cost model assumes (C_inv = B/2w).
type Index struct {
	keys []bat.Value // sorted distinct values
	pos  map[bat.Value][]int32
	heap storage.HeapID
	n    int64 // total entries
}

// IndexOn returns (building and caching on first use) the inverted list on
// column col.
func (t *Table) IndexOn(col int) *Index {
	if ix, ok := t.indexes[col]; ok {
		return ix
	}
	ix := &Index{pos: make(map[bat.Value][]int32), heap: storage.NextHeapID(), n: int64(len(t.Rows))}
	for i, r := range t.Rows {
		v := r[col]
		if _, seen := ix.pos[v]; !seen {
			ix.keys = append(ix.keys, v)
		}
		ix.pos[v] = append(ix.pos[v], int32(i))
	}
	sort.Slice(ix.keys, func(i, j int) bool { return bat.Less(ix.keys[i], ix.keys[j]) })
	t.indexes[col] = ix
	return ix
}

// Lookup returns the row ids holding v, touching the index pages the entries
// occupy.
func (ix *Index) Lookup(p *storage.Pager, v bat.Value) []int32 {
	ids := ix.pos[v]
	p.TouchRange(ix.heap, 0, int64(len(ids))*8)
	return ids
}

// LookupRange returns the row ids with lo <= value <= hi (nil bound =
// unbounded), touching the index pages scanned.
func (ix *Index) LookupRange(p *storage.Pager, lo, hi *bat.Value, loIncl, hiIncl bool) []int32 {
	start := 0
	if lo != nil {
		start = sort.Search(len(ix.keys), func(i int) bool {
			c := bat.Compare(ix.keys[i], *lo)
			if loIncl {
				return c >= 0
			}
			return c > 0
		})
	}
	end := len(ix.keys)
	if hi != nil {
		end = sort.Search(len(ix.keys), func(i int) bool {
			c := bat.Compare(ix.keys[i], *hi)
			if hiIncl {
				return c > 0
			}
			return c >= 0
		})
	}
	var ids []int32
	for _, k := range ix.keys[start:end] {
		ids = append(ids, ix.pos[k]...)
	}
	p.TouchRange(ix.heap, 0, int64(len(ids))*8)
	return ids
}

// Store is the relational TPC-D database: the classic eight-table schema.
type Store struct {
	Region, Nation, Part, Supplier, PartSupp, Customer, Orders, Lineitem *Table
	Pager                                                                *storage.Pager
}

// Column positions, mirroring the TPC-D relational schema.
const (
	RName                                                       = 0 // region
	NName, NRegion                                              = 0, 1
	PName, PMfgr, PBrand, PType, PSize, PContainer, PRetail     = 0, 1, 2, 3, 4, 5, 6
	SName, SAddr, SPhone, SAcct, SNation                        = 0, 1, 2, 3, 4
	PSSupp, PSPart, PSCost, PSAvail                             = 0, 1, 2, 3
	CName, CAddr, CPhone, CAcct, CNation, CSegment              = 0, 1, 2, 3, 4, 5
	OCust, OStatus, OTotal, ODate, OPriority, OClerk, OShipPrio = 0, 1, 2, 3, 4, 5, 6
	LPart, LSupp, LOrder, LQty, LFlag, LStatus, LPrice, LDisc, LTax,
	LShip, LCommit, LReceipt, LMode, LInstruct = 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13
)

// Load populates the row store from the same generated database the BAT
// loader uses, so both systems answer over identical data.
func Load(db *tpcd.DB) *Store {
	s := &Store{
		Region:   NewTable("region", "name"),
		Nation:   NewTable("nation", "name", "region"),
		Part:     NewTable("part", "name", "mfgr", "brand", "type", "size", "container", "retailprice"),
		Supplier: NewTable("supplier", "name", "address", "phone", "acctbal", "nation"),
		PartSupp: NewTable("partsupp", "supplier", "part", "cost", "available"),
		Customer: NewTable("customer", "name", "address", "phone", "acctbal", "nation", "mktsegment"),
		Orders:   NewTable("orders", "cust", "status", "totalprice", "orderdate", "orderpriority", "clerk", "shippriority"),
		Lineitem: NewTable("lineitem", "part", "supplier", "order", "quantity", "returnflag",
			"linestatus", "extendedprice", "discount", "tax",
			"shipdate", "commitdate", "receiptdate", "shipmode", "shipinstruct"),
	}
	for _, r := range db.Regions {
		s.Region.Append(bat.S(r.Name))
	}
	for _, n := range db.Nations {
		s.Nation.Append(bat.S(n.Name), bat.I(int64(n.Region)))
	}
	for _, p := range db.Parts {
		s.Part.Append(bat.S(p.Name), bat.S(p.Manufacturer), bat.S(p.Brand),
			bat.S(p.Type), bat.I(p.Size), bat.S(p.Container), bat.F(p.RetailPrice))
	}
	for _, sp := range db.Suppliers {
		s.Supplier.Append(bat.S(sp.Name), bat.S(sp.Address), bat.S(sp.Phone),
			bat.F(sp.Acctbal), bat.I(int64(sp.Nation)))
	}
	for _, ps := range db.Supplies {
		s.PartSupp.Append(bat.I(int64(ps.Supplier)), bat.I(int64(ps.Part)),
			bat.F(ps.Cost), bat.I(ps.Available))
	}
	for _, c := range db.Customers {
		s.Customer.Append(bat.S(c.Name), bat.S(c.Address), bat.S(c.Phone),
			bat.F(c.Acctbal), bat.I(int64(c.Nation)), bat.S(c.Mktsegment))
	}
	for _, o := range db.Orders {
		s.Orders.Append(bat.I(int64(o.Cust)), bat.C(o.Status), bat.F(o.Totalprice),
			bat.D(o.Orderdate), bat.S(o.Orderpriority), bat.S(o.Clerk), bat.S(o.Shippriority))
	}
	for _, it := range db.Items {
		s.Lineitem.Append(bat.I(int64(it.Part)), bat.I(int64(it.Supplier)), bat.I(int64(it.Order)),
			bat.I(it.Quantity), bat.C(it.Returnflag), bat.C(it.Linestatus),
			bat.F(it.Extendedprice), bat.F(it.Discount), bat.F(it.Tax),
			bat.D(it.Shipdate), bat.D(it.Commitdate), bat.D(it.Receiptdate),
			bat.S(it.Shipmode), bat.S(it.Shipinstruct))
	}
	return s
}

// ByteSize reports the store's total data footprint.
func (s *Store) ByteSize() int64 {
	total := int64(0)
	for _, t := range []*Table{s.Region, s.Nation, s.Part, s.Supplier,
		s.PartSupp, s.Customer, s.Orders, s.Lineitem} {
		total += t.ByteSize()
	}
	return total
}
