package relational

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bat"
	"repro/internal/moa"
	"repro/internal/tpcd"
)

// Result is one executed baseline query with its Fig. 9 measures.
type Result struct {
	Set     *moa.SetVal
	Elapsed time.Duration
	Faults  uint64
}

// Run executes TPC-D query num on the row store. The result uses the same
// field layout as the MOA engine so that both validate against the same
// reference evaluator.
func (s *Store) Run(db *tpcd.DB, num int) (*Result, error) {
	var faults0 uint64
	if s.Pager != nil {
		faults0 = s.Pager.Faults()
	}
	start := time.Now()
	var out *moa.SetVal
	switch num {
	case 1:
		out = s.q1()
	case 2:
		out = s.q2()
	case 3:
		out = s.q3()
	case 4:
		out = s.q4()
	case 5:
		out = s.q5()
	case 6:
		out = s.q6()
	case 7:
		out = s.q7()
	case 8:
		out = s.q8()
	case 9:
		out = s.q9()
	case 10:
		out = s.q10()
	case 11:
		out = s.q11()
	case 12:
		out = s.q12()
	case 13:
		out = s.q13(db.Clerk())
	case 14:
		out = s.q14()
	case 15:
		out = s.q15()
	default:
		return nil, fmt.Errorf("relational: no query %d", num)
	}
	res := &Result{Set: out, Elapsed: time.Since(start)}
	if s.Pager != nil {
		res.Faults = s.Pager.Faults() - faults0
	}
	return res, nil
}

func date(s string) bat.Value { return bat.MustDate(s) }

func yearOf(days int64) int64 {
	return int64(time.Unix(days*86400, 0).UTC().Year())
}

func tup(names []string, vals ...moa.Val) *moa.TupleVal {
	return &moa.TupleVal{Names: names, Fields: vals}
}

func setOf(elems []moa.Elem) *moa.SetVal { return &moa.SetVal{Elems: elems} }

func (s *Store) regionName(row []bat.Value) string {
	return s.Region.Fetch(s.Pager, int(row[NRegion].I))[RName].S
}

func (s *Store) q1() *moa.SetVal {
	cutoff := date("1998-09-02")
	type acc struct {
		qty, cnt                 int64
		base, disc, charge, dsum float64
	}
	groups := map[[2]byte]*acc{}
	var order [][2]byte
	s.Lineitem.Scan(s.Pager, func(_ int, r []bat.Value) {
		if r[LShip].I > cutoff.I {
			return
		}
		k := [2]byte{byte(r[LFlag].I), byte(r[LStatus].I)}
		a := groups[k]
		if a == nil {
			a = &acc{}
			groups[k] = a
			order = append(order, k)
		}
		a.qty += r[LQty].I
		a.cnt++
		a.base += r[LPrice].F
		dp := r[LPrice].F * (1 - r[LDisc].F)
		a.disc += dp
		a.charge += dp * (1 + r[LTax].F)
		a.dsum += r[LDisc].F
	})
	names := []string{"returnflag", "linestatus", "sum_qty", "sum_base_price",
		"sum_disc_price", "sum_charge", "avg_qty", "avg_price", "avg_disc", "count_order"}
	var elems []moa.Elem
	for i, k := range order {
		a := groups[k]
		n := float64(a.cnt)
		elems = append(elems, moa.Elem{ID: bat.OID(i), V: tup(names,
			bat.C(k[0]), bat.C(k[1]), bat.I(a.qty), bat.F(a.base), bat.F(a.disc),
			bat.F(a.charge), bat.F(float64(a.qty)/n), bat.F(a.base/n),
			bat.F(a.dsum/n), bat.I(a.cnt))})
	}
	return setOf(elems)
}

func (s *Store) q2() *moa.SetVal {
	// index-assisted: parts of size 15, then partsupp probes
	sizeIdx := s.Part.IndexOn(PSize)
	psByPart := s.PartSupp.IndexOn(PSPart)
	type qual struct {
		psID int32
	}
	var quals []qual
	minCost := map[int64]float64{}
	for _, pid := range sizeIdx.Lookup(s.Pager, bat.I(15)) {
		part := s.Part.Fetch(s.Pager, int(pid))
		ty := part[PType].S
		if len(ty) < 5 || ty[len(ty)-5:] != "BRASS" {
			continue
		}
		for _, psID := range psByPart.Lookup(s.Pager, bat.I(int64(pid))) {
			ps := s.PartSupp.Fetch(s.Pager, int(psID))
			sup := s.Supplier.Fetch(s.Pager, int(ps[PSSupp].I))
			nat := s.Nation.Fetch(s.Pager, int(sup[SNation].I))
			if s.regionName(nat) != "EUROPE" {
				continue
			}
			quals = append(quals, qual{psID})
			p := ps[PSPart].I
			if c, ok := minCost[p]; !ok || ps[PSCost].F < c {
				minCost[p] = ps[PSCost].F
			}
		}
	}
	names := []string{"s_acctbal", "s_name", "n_name", "p", "cost"}
	var elems []moa.Elem
	for _, q := range quals {
		ps := s.PartSupp.Fetch(s.Pager, int(q.psID))
		if ps[PSCost].F != minCost[ps[PSPart].I] {
			continue
		}
		sup := s.Supplier.Fetch(s.Pager, int(ps[PSSupp].I))
		nat := s.Nation.Fetch(s.Pager, int(sup[SNation].I))
		elems = append(elems, moa.Elem{ID: bat.OID(q.psID), V: tup(names,
			sup[SAcct], sup[SName], nat[NName], bat.O(bat.OID(ps[PSPart].I)), ps[PSCost])})
	}
	return setOf(elems)
}

func (s *Store) q3() *moa.SetVal {
	cut := date("1995-03-15")
	rev := map[int64]float64{}
	var order []int64
	s.Lineitem.Scan(s.Pager, func(_ int, r []bat.Value) {
		if r[LShip].I <= cut.I {
			return
		}
		o := s.Orders.Fetch(s.Pager, int(r[LOrder].I))
		if o[ODate].I >= cut.I {
			return
		}
		c := s.Customer.Fetch(s.Pager, int(o[OCust].I))
		if c[CSegment].S != "BUILDING" {
			return
		}
		if _, ok := rev[r[LOrder].I]; !ok {
			order = append(order, r[LOrder].I)
		}
		rev[r[LOrder].I] += r[LPrice].F * (1 - r[LDisc].F)
	})
	sort.SliceStable(order, func(i, j int) bool { return rev[order[i]] > rev[order[j]] })
	if len(order) > 10 {
		order = order[:10]
	}
	names := []string{"o", "revenue", "orderdate", "shippriority"}
	var elems []moa.Elem
	for _, oid := range order {
		o := s.Orders.Fetch(s.Pager, int(oid))
		elems = append(elems, moa.Elem{ID: bat.OID(oid), V: tup(names,
			bat.O(bat.OID(oid)), bat.F(rev[oid]), o[ODate], o[OShipPrio])})
	}
	return setOf(elems)
}

func (s *Store) q4() *moa.SetVal {
	lo, hi := date("1993-07-01"), date("1993-10-01")
	itemsByOrder := s.Lineitem.IndexOn(LOrder)
	counts := map[string]int64{}
	for _, oid := range s.Orders.IndexOn(ODate).LookupRange(s.Pager, &lo, &hi, true, false) {
		o := s.Orders.Fetch(s.Pager, int(oid))
		if o[ODate].I >= hi.I { // exclusive upper bound
			continue
		}
		has := false
		for _, lid := range itemsByOrder.Lookup(s.Pager, bat.I(int64(oid))) {
			r := s.Lineitem.Fetch(s.Pager, int(lid))
			if r[LCommit].I < r[LReceipt].I {
				has = true
				break
			}
		}
		if has {
			counts[o[OPriority].S]++
		}
	}
	names := []string{"orderpriority", "order_count"}
	var elems []moa.Elem
	i := 0
	for p, c := range counts {
		elems = append(elems, moa.Elem{ID: bat.OID(i), V: tup(names, bat.S(p), bat.I(c))})
		i++
	}
	return setOf(elems)
}

func (s *Store) q5() *moa.SetVal {
	lo, hi := date("1994-01-01"), date("1995-01-01")
	rev := map[string]float64{}
	s.Lineitem.Scan(s.Pager, func(_ int, r []bat.Value) {
		o := s.Orders.Fetch(s.Pager, int(r[LOrder].I))
		if o[ODate].I < lo.I || o[ODate].I >= hi.I {
			return
		}
		c := s.Customer.Fetch(s.Pager, int(o[OCust].I))
		cn := s.Nation.Fetch(s.Pager, int(c[CNation].I))
		if s.regionName(cn) != "ASIA" {
			return
		}
		sup := s.Supplier.Fetch(s.Pager, int(r[LSupp].I))
		if sup[SNation].I != c[CNation].I {
			return
		}
		rev[cn[NName].S] += r[LPrice].F * (1 - r[LDisc].F)
	})
	names := []string{"n_name", "revenue"}
	var elems []moa.Elem
	i := 0
	for n, v := range rev {
		elems = append(elems, moa.Elem{ID: bat.OID(i), V: tup(names, bat.S(n), bat.F(v))})
		i++
	}
	return setOf(elems)
}

func (s *Store) q6() *moa.SetVal {
	lo, hi := date("1994-01-01"), date("1995-01-01")
	sum := 0.0
	s.Lineitem.Scan(s.Pager, func(_ int, r []bat.Value) {
		if r[LShip].I >= lo.I && r[LShip].I < hi.I &&
			r[LDisc].F >= 0.05 && r[LDisc].F <= 0.07 && r[LQty].I < 24 {
			sum += r[LPrice].F * r[LDisc].F
		}
	})
	return setOf([]moa.Elem{{ID: 0, V: bat.F(sum)}})
}

func (s *Store) q7() *moa.SetVal {
	lo, hi := date("1995-01-01"), date("1996-12-31")
	type key struct {
		sn, cn string
		yr     int64
	}
	rev := map[key]float64{}
	s.Lineitem.Scan(s.Pager, func(_ int, r []bat.Value) {
		if r[LShip].I < lo.I || r[LShip].I > hi.I {
			return
		}
		sup := s.Supplier.Fetch(s.Pager, int(r[LSupp].I))
		sn := s.Nation.Fetch(s.Pager, int(sup[SNation].I))[NName].S
		o := s.Orders.Fetch(s.Pager, int(r[LOrder].I))
		c := s.Customer.Fetch(s.Pager, int(o[OCust].I))
		cn := s.Nation.Fetch(s.Pager, int(c[CNation].I))[NName].S
		if !(sn == "FRANCE" && cn == "GERMANY") && !(sn == "GERMANY" && cn == "FRANCE") {
			return
		}
		rev[key{sn, cn, yearOf(r[LShip].I)}] += r[LPrice].F * (1 - r[LDisc].F)
	})
	names := []string{"supp_nation", "cust_nation", "l_year", "revenue"}
	var elems []moa.Elem
	i := 0
	for k, v := range rev {
		elems = append(elems, moa.Elem{ID: bat.OID(i), V: tup(names,
			bat.S(k.sn), bat.S(k.cn), bat.I(k.yr), bat.F(v))})
		i++
	}
	return setOf(elems)
}

func (s *Store) q8() *moa.SetVal {
	lo, hi := date("1995-01-01"), date("1996-12-31")
	tot := map[int64]float64{}
	bra := map[int64]float64{}
	s.Lineitem.Scan(s.Pager, func(_ int, r []bat.Value) {
		p := s.Part.Fetch(s.Pager, int(r[LPart].I))
		if p[PType].S != "ECONOMY ANODIZED STEEL" {
			return
		}
		o := s.Orders.Fetch(s.Pager, int(r[LOrder].I))
		if o[ODate].I < lo.I || o[ODate].I > hi.I {
			return
		}
		c := s.Customer.Fetch(s.Pager, int(o[OCust].I))
		cn := s.Nation.Fetch(s.Pager, int(c[CNation].I))
		if s.regionName(cn) != "AMERICA" {
			return
		}
		yr := yearOf(o[ODate].I)
		v := r[LPrice].F * (1 - r[LDisc].F)
		tot[yr] += v
		sup := s.Supplier.Fetch(s.Pager, int(r[LSupp].I))
		if s.Nation.Fetch(s.Pager, int(sup[SNation].I))[NName].S == "BRAZIL" {
			bra[yr] += v
		}
	})
	names := []string{"o_year", "mkt_share"}
	var elems []moa.Elem
	i := 0
	for yr, t := range tot {
		share := 0.0
		if t != 0 {
			share = bra[yr] / t
		}
		elems = append(elems, moa.Elem{ID: bat.OID(i), V: tup(names, bat.I(yr), bat.F(share))})
		i++
	}
	return setOf(elems)
}

func (s *Store) q9() *moa.SetVal {
	type key struct {
		n  string
		yr int64
	}
	type psKey struct{ sup, part int64 }
	cost := map[psKey]float64{}
	s.PartSupp.Scan(s.Pager, func(_ int, r []bat.Value) {
		cost[psKey{r[PSSupp].I, r[PSPart].I}] = r[PSCost].F
	})
	profit := map[key]float64{}
	s.Lineitem.Scan(s.Pager, func(_ int, r []bat.Value) {
		p := s.Part.Fetch(s.Pager, int(r[LPart].I))
		if !contains(p[PName].S, "green") {
			return
		}
		c, ok := cost[psKey{r[LSupp].I, r[LPart].I}]
		if !ok {
			return
		}
		sup := s.Supplier.Fetch(s.Pager, int(r[LSupp].I))
		n := s.Nation.Fetch(s.Pager, int(sup[SNation].I))[NName].S
		o := s.Orders.Fetch(s.Pager, int(r[LOrder].I))
		profit[key{n, yearOf(o[ODate].I)}] += r[LPrice].F*(1-r[LDisc].F) - c*float64(r[LQty].I)
	})
	names := []string{"nation", "o_year", "sum_profit"}
	var elems []moa.Elem
	i := 0
	for k, v := range profit {
		elems = append(elems, moa.Elem{ID: bat.OID(i), V: tup(names,
			bat.S(k.n), bat.I(k.yr), bat.F(v))})
		i++
	}
	return setOf(elems)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func (s *Store) q10() *moa.SetVal {
	lo, hi := date("1993-10-01"), date("1994-01-01")
	rev := map[int64]float64{}
	var order []int64
	s.Lineitem.Scan(s.Pager, func(_ int, r []bat.Value) {
		if byte(r[LFlag].I) != 'R' {
			return
		}
		o := s.Orders.Fetch(s.Pager, int(r[LOrder].I))
		if o[ODate].I < lo.I || o[ODate].I >= hi.I {
			return
		}
		cid := o[OCust].I
		if _, ok := rev[cid]; !ok {
			order = append(order, cid)
		}
		rev[cid] += r[LPrice].F * (1 - r[LDisc].F)
	})
	sort.SliceStable(order, func(i, j int) bool { return rev[order[i]] > rev[order[j]] })
	if len(order) > 20 {
		order = order[:20]
	}
	names := []string{"c", "revenue", "c_name", "c_acctbal", "n_name"}
	var elems []moa.Elem
	for _, cid := range order {
		c := s.Customer.Fetch(s.Pager, int(cid))
		n := s.Nation.Fetch(s.Pager, int(c[CNation].I))
		elems = append(elems, moa.Elem{ID: bat.OID(cid), V: tup(names,
			bat.O(bat.OID(cid)), bat.F(rev[cid]), c[CName], c[CAcct], n[NName])})
	}
	return setOf(elems)
}

func (s *Store) q11() *moa.SetVal {
	value := map[int64]float64{}
	total := 0.0
	s.PartSupp.Scan(s.Pager, func(_ int, r []bat.Value) {
		sup := s.Supplier.Fetch(s.Pager, int(r[PSSupp].I))
		if s.Nation.Fetch(s.Pager, int(sup[SNation].I))[NName].S != "GERMANY" {
			return
		}
		v := r[PSCost].F * float64(r[PSAvail].I)
		value[r[PSPart].I] += v
		total += v
	})
	threshold := 0.0001 * total
	names := []string{"p", "v"}
	var elems []moa.Elem
	for p, v := range value {
		if v > threshold {
			elems = append(elems, moa.Elem{ID: bat.OID(p), V: tup(names,
				bat.O(bat.OID(p)), bat.F(v))})
		}
	}
	return setOf(elems)
}

func (s *Store) q12() *moa.SetVal {
	lo, hi := date("1994-01-01"), date("1995-01-01")
	high := map[string]int64{}
	low := map[string]int64{}
	s.Lineitem.Scan(s.Pager, func(_ int, r []bat.Value) {
		m := r[LMode].S
		if m != "MAIL" && m != "SHIP" {
			return
		}
		if !(r[LCommit].I < r[LReceipt].I && r[LShip].I < r[LCommit].I) {
			return
		}
		if r[LReceipt].I < lo.I || r[LReceipt].I >= hi.I {
			return
		}
		p := s.Orders.Fetch(s.Pager, int(r[LOrder].I))[OPriority].S
		if p == "1-URGENT" || p == "2-HIGH" {
			high[m]++
			low[m] += 0
		} else {
			low[m]++
			high[m] += 0
		}
	})
	names := []string{"shipmode", "high_line_count", "low_line_count"}
	var elems []moa.Elem
	i := 0
	for m := range high {
		elems = append(elems, moa.Elem{ID: bat.OID(i), V: tup(names,
			bat.S(m), bat.I(high[m]), bat.I(low[m]))})
		i++
	}
	return setOf(elems)
}

func (s *Store) q13(clerk string) *moa.SetVal {
	itemsByOrder := s.Lineitem.IndexOn(LOrder)
	loss := map[int64]float64{}
	for _, oid := range s.Orders.IndexOn(OClerk).Lookup(s.Pager, bat.S(clerk)) {
		o := s.Orders.Fetch(s.Pager, int(oid))
		for _, lid := range itemsByOrder.Lookup(s.Pager, bat.I(int64(oid))) {
			r := s.Lineitem.Fetch(s.Pager, int(lid))
			if byte(r[LFlag].I) != 'R' {
				continue
			}
			loss[yearOf(o[ODate].I)] += r[LPrice].F * (1 - r[LDisc].F)
		}
	}
	names := []string{"year", "loss"}
	var elems []moa.Elem
	i := 0
	for yr, l := range loss {
		elems = append(elems, moa.Elem{ID: bat.OID(i), V: tup(names, bat.I(yr), bat.F(l))})
		i++
	}
	return setOf(elems)
}

func (s *Store) q14() *moa.SetVal {
	lo, hi := date("1995-09-01"), date("1995-10-01")
	promo, total := 0.0, 0.0
	s.Lineitem.Scan(s.Pager, func(_ int, r []bat.Value) {
		if r[LShip].I < lo.I || r[LShip].I >= hi.I {
			return
		}
		v := r[LPrice].F * (1 - r[LDisc].F)
		total += v
		ty := s.Part.Fetch(s.Pager, int(r[LPart].I))[PType].S
		if len(ty) >= 5 && ty[:5] == "PROMO" {
			promo += v
		}
	})
	if total == 0 {
		return setOf([]moa.Elem{{ID: 0, V: bat.F(0)}})
	}
	return setOf([]moa.Elem{{ID: 0, V: bat.F(100 * promo / total)}})
}

func (s *Store) q15() *moa.SetVal {
	lo, hi := date("1996-01-01"), date("1996-04-01")
	rev := map[int64]float64{}
	s.Lineitem.Scan(s.Pager, func(_ int, r []bat.Value) {
		if r[LShip].I >= lo.I && r[LShip].I < hi.I {
			rev[r[LSupp].I] += r[LPrice].F * (1 - r[LDisc].F)
		}
	})
	max := 0.0
	for _, v := range rev {
		if v > max {
			max = v
		}
	}
	names := []string{"s", "total_revenue", "s_name"}
	var elems []moa.Elem
	for sid, v := range rev {
		if v >= max {
			sup := s.Supplier.Fetch(s.Pager, int(sid))
			elems = append(elems, moa.Elem{ID: bat.OID(sid), V: tup(names,
				bat.O(bat.OID(sid)), bat.F(v), sup[SName])})
		}
	}
	return setOf(elems)
}
