package relational

import (
	"sync"
	"testing"

	"repro/internal/bat"
	"repro/internal/storage"
	"repro/internal/tpcd"
)

var (
	once  sync.Once
	genDB *tpcd.DB
	store *Store
)

func testStore(t *testing.T) (*tpcd.DB, *Store) {
	t.Helper()
	once.Do(func() {
		genDB = tpcd.Generate(0.002, 7)
		store = Load(genDB)
	})
	return genDB, store
}

// TestBaselineMatchesReference validates the row-store executor against the
// same independent reference evaluator that validates the MOA engine — so
// both systems provably answer the same questions.
func TestBaselineMatchesReference(t *testing.T) {
	db, s := testStore(t)
	for _, q := range tpcd.Queries(db) {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			res, err := s.Run(db, q.Num)
			if err != nil {
				t.Fatalf("Q%d: %v", q.Num, err)
			}
			want, err := tpcd.Reference(db, q.Num)
			if err != nil {
				t.Fatal(err)
			}
			if err := tpcd.CompareResults(res.Set, want, q.Ordered); err != nil {
				t.Fatalf("Q%d mismatch: %v", q.Num, err)
			}
		})
	}
}

func TestRunUnknownQuery(t *testing.T) {
	db, s := testStore(t)
	if _, err := s.Run(db, 99); err == nil {
		t.Fatal("expected error for unknown query")
	}
}

func TestTableBasics(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Append(bat.I(1), bat.S("x"))
	tb.Append(bat.I(2), bat.S("y"))
	if tb.Col("b") != 1 || tb.Col("zz") != -1 {
		t.Fatal("Col lookup wrong")
	}
	if got := tb.Fetch(nil, 1)[1].S; got != "y" {
		t.Fatalf("fetch = %q", got)
	}
	n := 0
	tb.Scan(nil, func(int, []bat.Value) { n++ })
	if n != 2 {
		t.Fatalf("scan visited %d", n)
	}
	if tb.ByteSize() != 2*3*4 {
		t.Fatalf("bytesize = %d", tb.ByteSize())
	}
}

func TestIndexLookupAndRange(t *testing.T) {
	tb := NewTable("t", "v")
	for _, v := range []int64{5, 3, 5, 9, 1} {
		tb.Append(bat.I(v))
	}
	ix := tb.IndexOn(0)
	if got := ix.Lookup(nil, bat.I(5)); len(got) != 2 {
		t.Fatalf("lookup(5) = %v", got)
	}
	lo, hi := bat.I(3), bat.I(5)
	if got := ix.LookupRange(nil, &lo, &hi, true, true); len(got) != 3 {
		t.Fatalf("range [3,5] = %v", got)
	}
	if got := ix.LookupRange(nil, &lo, &hi, false, false); len(got) != 0 {
		t.Fatalf("range (3,5) = %v", got)
	}
	if got := ix.LookupRange(nil, nil, nil, true, true); len(got) != 5 {
		t.Fatalf("full range = %v", got)
	}
	// cached
	if tb.IndexOn(0) != ix {
		t.Fatal("index must be cached")
	}
}

func TestScanTouchesEveryPageOnce(t *testing.T) {
	db, _ := testStore(t)
	s := Load(db)
	s.Pager = storage.NewPager(4096, 0)
	n := 0
	s.Lineitem.Scan(s.Pager, func(int, []bat.Value) { n++ })
	wantPages := (s.Lineitem.ByteSize() + 4095) / 4096
	if got := int64(s.Pager.Faults()); got != wantPages {
		t.Fatalf("faults = %d, want %d", got, wantPages)
	}
	if n != len(s.Lineitem.Rows) {
		t.Fatalf("visited %d of %d", n, len(s.Lineitem.Rows))
	}
}

func TestUnclusteredFetchFaultsPerPage(t *testing.T) {
	db, _ := testStore(t)
	s := Load(db)
	s.Pager = storage.NewPager(4096, 0)
	// two fetches far apart: two distinct pages
	s.Lineitem.Fetch(s.Pager, 0)
	s.Lineitem.Fetch(s.Pager, len(s.Lineitem.Rows)-1)
	if got := s.Pager.Faults(); got != 2 {
		t.Fatalf("faults = %d, want 2", got)
	}
}
