package rewrite

import (
	"repro/internal/bat"
	"repro/internal/mil"
	"repro/internal/moa"
)

// scalarRes is the translation of a scalar-typed expression inside a set
// scope: a value-set variable [elemid, value] aligned with the scope's
// candidate, a constant, or a one-BUN scalar variable (an independent
// aggregate subquery).
type scalarRes struct {
	Var       string
	Const     *bat.Value
	ScalarVar string
}

func (s scalarRes) arg() mil.StmtArg {
	switch {
	case s.Var != "":
		return mil.VarArg(s.Var)
	case s.Const != nil:
		return mil.LitArg(*s.Const)
	default:
		return mil.ScalarArg(s.ScalarVar)
	}
}

// litLike reports whether the value is usable as a select bound.
func (s scalarRes) litLike() bool { return s.Var == "" }

func (r *rewriter) evalScalar(e moa.Expr) scalarRes {
	switch x := e.(type) {
	case *moa.Lit:
		v := x.V
		return scalarRes{Const: &v}

	case *moa.AttrRef:
		if x.Depth != 0 {
			r.fail("correlated reference %s to an enclosing scope is not supported in scalar position", x)
		}
		sc := r.scope(0)
		v := r.navigate(sc, x.Path)
		return scalarRes{Var: v}

	case *moa.Call:
		if aggFns[x.Fn] {
			return r.evalAggregate(x)
		}
		if x.Fn == "in" {
			// in scalar position: fold to or(=(v,a), =(v,b), …)
			args := make([]moa.Expr, 0, len(x.Args)-1)
			for _, alt := range x.Args[1:] {
				args = append(args, &moa.Call{Fn: "=", Args: []moa.Expr{x.Args[0], alt}})
			}
			return r.evalScalar(&moa.Call{Fn: "or", Args: args})
		}
		if x.Fn == "exists" {
			res := r.evalSetScoped(x.Args[0])
			if res.ownerIdx == "" {
				r.fail("exists over an independent set is not supported in scalar position")
			}
			// [owner, count>0]: aggregate membership, compare
			cnt := r.b.Emit("cnt", mil.Stmt{Op: mil.OpAggr, Fn: "count",
				Args: []mil.StmtArg{mil.VarArg(res.ownerIdx)}})
			v := r.b.Emit("has", mil.Stmt{Op: mil.OpMultiplex, Fn: ">",
				Args: []mil.StmtArg{mil.VarArg(cnt), mil.LitArg(bat.I(0))}})
			return scalarRes{Var: v}
		}
		args := make([]scalarRes, len(x.Args))
		anyVar := false
		anyScalar := false
		for i, a := range x.Args {
			args[i] = r.evalScalar(a)
			if args[i].Var != "" {
				anyVar = true
			}
			if args[i].ScalarVar != "" {
				anyScalar = true
			}
		}
		if !anyVar && !anyScalar {
			// constant folding
			vals := make([]bat.Value, len(args))
			for i, a := range args {
				vals[i] = *a.Const
			}
			v := mil.CallFunc(x.Fn, vals)
			return scalarRes{Const: &v}
		}
		stmtArgs := make([]mil.StmtArg, len(args))
		for i, a := range args {
			stmtArgs[i] = a.arg()
		}
		if !anyVar {
			// scalar-only computation (e.g. 0.0001 * sum(...)): one BUN
			v := r.b.Emit("calc", mil.Stmt{Op: mil.OpCalc, Fn: x.Fn, Args: stmtArgs})
			return scalarRes{ScalarVar: v}
		}
		v := r.b.Emit("mx", mil.Stmt{Op: mil.OpMultiplex, Fn: x.Fn, Args: stmtArgs})
		return scalarRes{Var: v}
	}
	r.fail("unsupported scalar expression %T (%s)", e, e)
	return scalarRes{}
}

var aggFns = map[string]bool{"sum": true, "count": true, "avg": true, "min": true, "max": true}

// evalAggregate translates agg(setExpr). When the set is reached from the
// element in scope (res.ownerIdx != ""), the aggregation is grouped per
// owner — the paper's "execute nested aggregates in one go" via the
// set-aggregate constructor (Fig. 10 lines 14-15: losses :=
// join(class.mirror, rlprices); LOSS := {sum}(losses)). Otherwise the set is
// independent and a whole-set aggregate produces a scalar.
func (r *rewriter) evalAggregate(x *moa.Call) scalarRes {
	res := r.evalSetScoped(x.Args[0])
	if res.ownerIdx != "" {
		var per string
		if x.Fn == "count" {
			per = res.ownerIdx
		} else {
			vs := r.valuesOf(res.rep)
			per = r.b.Emit("per", mil.Stmt{Op: mil.OpJoin,
				Args: []mil.StmtArg{mil.VarArg(res.ownerIdx), mil.VarArg(vs)}})
		}
		out := r.b.Emit(x.Fn, mil.Stmt{Op: mil.OpAggr, Fn: x.Fn,
			Args: []mil.StmtArg{mil.VarArg(per)}})
		return scalarRes{Var: out}
	}
	var vs string
	if x.Fn == "count" {
		vs = res.rep.Cand
	} else {
		vs = r.valuesOf(res.rep)
	}
	out := r.b.Emit(x.Fn, mil.Stmt{Op: mil.OpAggrScalar, Fn: x.Fn,
		Args: []mil.StmtArg{mil.VarArg(vs)}})
	return scalarRes{ScalarVar: out}
}

// evalSetScoped evaluates a set expression that may or may not reference the
// current scope. Independent sets (class extents and operations on them) are
// detected by evalSet returning an empty ownerIdx.
func (r *rewriter) evalSetScoped(e moa.Expr) setRes { return r.evalSet(e) }

// valuesOf yields the value set [memberid, value] of a set of atoms (or
// object references), restricted to the set's candidate.
func (r *rewriter) valuesOf(rep *SetRep) string {
	switch el := rep.Elem.(type) {
	case AtomElem:
		if el.AlignedTo != "" && el.AlignedTo == rep.Cand {
			return el.Var
		}
		return r.restrict(el.Var, rep.Cand)
	case RefElem:
		if el.AlignedTo != "" && el.AlignedTo == rep.Cand {
			return el.Var
		}
		return r.restrict(el.Var, rep.Cand)
	}
	r.fail("aggregate over a set of non-atomic elements")
	return ""
}

// navigate translates an attribute path on the scope's element into a value
// set [elemid, value]. Each reference step becomes a semijoin (first hop;
// the dynamic optimizer picks sync/datavector/merge/hash) or a join (later
// hops, as in Fig. 10 line 6: years := [year](join(critems,
// Order_orderdate))).
func (r *rewriter) navigate(sc *SetRep, path []string) string {
	cur := ""
	rep := sc.Elem
	for i := 0; i < len(path); i++ {
		attr := path[i]
		var done bool
		rep, cur, done = r.step(sc, cur, rep, attr)
		if done && i != len(path)-1 {
			r.fail("attribute %q used as an object in path %v", attr, path)
		}
	}
	if cur == "" {
		r.fail("empty attribute path")
	}
	return cur
}

// step performs one attribute access. It returns the new element
// representation (for reference steps), the value-set variable so far, and
// whether the step reached an atomic value.
func (r *rewriter) step(sc *SetRep, cur string, rep ElemRep, attr string) (ElemRep, string, bool) {
	switch el := rep.(type) {
	case ObjElem:
		t, ok := r.schema.AttrType(moa.ObjectType{Class: el.Class}, attr)
		if !ok {
			r.fail("class %s has no attribute %q", el.Class, attr)
		}
		if _, isSet := t.(moa.SetType); isSet {
			r.fail("set-valued attribute %q in scalar path", attr)
		}
		v := r.fetch(sc, cur, moa.AttrBAT(el.Class, attr))
		if ot, isRef := t.(moa.ObjectType); isRef {
			return ObjElem{Class: ot.Class}, v, false
		}
		return nil, v, true

	case TupleElem:
		for i, name := range el.Names {
			if name != attr {
				continue
			}
			switch f := el.Fields[i].(type) {
			case AtomElem:
				v := r.fetchAligned(sc, cur, f.Var, f.AlignedTo)
				return nil, v, true
			case RefElem:
				v := r.fetchAligned(sc, cur, f.Var, f.AlignedTo)
				return ObjElem{Class: f.Class}, v, false
			case NestedSetElem:
				r.fail("set-valued field %q in scalar path", attr)
			case IndirectElem:
				// The field name is consumed; the hop exposes the base
				// element for the path's next step.
				cur2 := r.fetch(sc, cur, f.Via)
				return f.Elem, cur2, false
			}
		}
		r.fail("tuple has no field %q", attr)

	case IndirectElem:
		cur2 := r.fetch(sc, cur, el.Via)
		return r.stepThrough(sc, cur2, el.Elem, attr)
	}
	r.fail("cannot access attribute %q on %T", attr, rep)
	return nil, "", false
}

// stepThrough continues an attribute access after an indirection hop: cur is
// now a non-empty chain variable, so all further fetches are joins.
func (r *rewriter) stepThrough(sc *SetRep, cur string, rep ElemRep, attr string) (ElemRep, string, bool) {
	switch el := rep.(type) {
	case ObjElem, TupleElem, IndirectElem:
		return r.step(sc, cur, el, attr)
	}
	r.fail("cannot access attribute %q through indirection on %T", attr, rep)
	return nil, "", false
}

// fetchAligned is fetch, skipping the restricting semijoin when the value
// set is known to be aligned with the scope's current candidate.
func (r *rewriter) fetchAligned(sc *SetRep, cur, ivsVar, alignedTo string) string {
	if cur == "" && alignedTo != "" && alignedTo == sc.Cand {
		return ivsVar
	}
	return r.fetch(sc, cur, ivsVar)
}

// fetch extends the navigation chain by one hop: the first hop restricts the
// persistent/materialized IVS to the scope candidate (a semijoin), later
// hops join the chain's tail oids with the next IVS's heads.
func (r *rewriter) fetch(sc *SetRep, cur, ivsVar string) string {
	if cur == "" {
		if ivsVar == sc.Cand {
			return ivsVar
		}
		return r.b.Emit("sj", mil.Stmt{Op: mil.OpSemijoin,
			Args: []mil.StmtArg{mil.VarArg(ivsVar), mil.VarArg(sc.Cand)}})
	}
	return r.b.Emit("jn", mil.Stmt{Op: mil.OpJoin,
		Args: []mil.StmtArg{mil.VarArg(cur), mil.VarArg(ivsVar)}})
}

// evalSetPath translates a set-valued attribute path: zero or more scalar
// reference steps followed by a set-valued attribute (supplies, item, the
// $group field of a nest).
func (r *rewriter) evalSetPath(ref *moa.AttrRef) setRes {
	if ref.Depth != 0 {
		r.fail("correlated set reference %s is not supported", ref)
	}
	sc := r.scope(0)
	cur := ""
	rep := sc.Elem
	for i, attr := range ref.Path {
		last := i == len(ref.Path)-1
		if !last {
			var done bool
			rep, cur, done = r.step(sc, cur, rep, attr)
			if done {
				r.fail("atomic attribute %q inside set path %v", attr, ref.Path)
			}
			continue
		}
		// final step must reach a set
		switch el := rep.(type) {
		case ObjElem:
			t, ok := r.schema.AttrType(moa.ObjectType{Class: el.Class}, attr)
			if !ok {
				r.fail("class %s has no attribute %q", el.Class, attr)
			}
			st, isSet := t.(moa.SetType)
			if !isSet {
				r.fail("attribute %q is not set-valued", attr)
			}
			ownerIdx := r.fetch(sc, cur, moa.AttrBAT(el.Class, attr))
			cand := r.b.Emit("sub", mil.Stmt{Op: mil.OpMirror, Args: []mil.StmtArg{mil.VarArg(ownerIdx)}})
			var elem ElemRep
			switch it := st.Elem.(type) {
			case moa.TupleType:
				names := make([]string, len(it.Fields))
				fields := make([]ElemRep, len(it.Fields))
				for j, f := range it.Fields {
					names[j] = f.Name
					fields[j] = r.nestedFieldRep(el.Class, attr, f)
				}
				elem = TupleElem{Names: names, Fields: fields}
			case moa.ObjectType:
				elem = ObjElem{Class: it.Class}
			case moa.BaseType:
				// SET(A) simple form over atoms: the index tails are the
				// values themselves.
				elem = AtomElem{Var: cand}
			default:
				r.fail("set of %s not supported", st.Elem)
			}
			return setRes{rep: &SetRep{Cand: cand, Elem: elem}, ownerIdx: ownerIdx}

		case TupleElem:
			idx := el.Names
			for j, name := range idx {
				if name != attr {
					continue
				}
				nested, ok := el.Fields[j].(NestedSetElem)
				if !ok {
					r.fail("field %q is not set-valued", attr)
				}
				ownerIdx := r.fetch(sc, cur, nested.Index)
				cand := r.b.Emit("sub", mil.Stmt{Op: mil.OpMirror, Args: []mil.StmtArg{mil.VarArg(ownerIdx)}})
				return setRes{rep: &SetRep{Cand: cand, Elem: nested.Elem}, ownerIdx: ownerIdx}
			}
			r.fail("tuple has no field %q", attr)
		default:
			r.fail("cannot reach set attribute %q on %T", attr, rep)
		}
	}
	r.fail("empty set path")
	return setRes{}
}
