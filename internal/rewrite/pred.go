package rewrite

import (
	"repro/internal/bat"
	"repro/internal/mil"
	"repro/internal/moa"
)

// translatePreds threads the scope's candidate through the selection
// conjuncts, mutating sc.Cand. This reproduces the paper's two-phase
// strategy (Fig. 5 "MIL selection phase"): on an untouched extent the first
// comparison selects directly on the attribute BAT (binary search on the
// tail-ordered layout) and joins back through reference attributes; later
// conjuncts semijoin the attribute BAT with the current candidate and select
// on the result (Fig. 10 lines 1-4).
func (r *rewriter) translatePreds(sc *SetRep, preds []moa.Expr) {
	for _, p := range preds {
		r.applyPred(sc, p)
	}
}

func (r *rewriter) applyPred(sc *SetRep, p moa.Expr) {
	call, ok := p.(*moa.Call)
	if !ok {
		r.applyGenericPred(sc, p)
		return
	}
	switch call.Fn {
	case "and":
		for _, c := range call.Args {
			r.applyPred(sc, c)
		}
		return
	case "exists":
		res := r.evalSet(call.Args[0])
		if res.ownerIdx == "" {
			r.fail("exists over an independent set cannot filter the selection")
		}
		sc.Cand = r.b.Emit("sel", mil.Stmt{Op: mil.OpSemijoin,
			Args: []mil.StmtArg{mil.VarArg(sc.Cand), mil.VarArg(res.ownerIdx)}})
		sc.CandIsExtent = false
		return
	case "in":
		if ref, lits, ok := r.inFastPath(call); ok {
			v := r.navigate(sc, ref.Path)
			var cand string
			for _, lit := range lits {
				ci := r.b.Emit("sel", mil.Stmt{Op: mil.OpSelect,
					Args: []mil.StmtArg{mil.VarArg(v), mil.LitArg(lit)}})
				if cand == "" {
					cand = ci
				} else {
					cand = r.b.Emit("sel", mil.Stmt{Op: mil.OpUnion,
						Args: []mil.StmtArg{mil.VarArg(cand), mil.VarArg(ci)}})
				}
			}
			sc.Cand = cand
			sc.CandIsExtent = false
			return
		}
	case "=", "<", "<=", ">", ">=":
		if r.applyComparison(sc, call) {
			return
		}
	}
	r.applyGenericPred(sc, p)
}

// inFastPath recognizes in(attrpath, lit, lit, …).
func (r *rewriter) inFastPath(call *moa.Call) (*moa.AttrRef, []bat.Value, bool) {
	ref, ok := call.Args[0].(*moa.AttrRef)
	if !ok || ref.Depth != 0 {
		return nil, nil, false
	}
	lits := make([]bat.Value, 0, len(call.Args)-1)
	for _, a := range call.Args[1:] {
		l, ok := a.(*moa.Lit)
		if !ok {
			return nil, nil, false
		}
		lits = append(lits, l.V)
	}
	return ref, lits, true
}

// applyComparison handles cmp(attrpath, literal) conjuncts (either order).
// Returns false if the shape does not match, falling back to the generic
// boolean translation.
func (r *rewriter) applyComparison(sc *SetRep, call *moa.Call) bool {
	ref, refOK := call.Args[0].(*moa.AttrRef)
	litSide := 1
	fn := call.Fn
	if !refOK || ref.Depth != 0 {
		ref, refOK = call.Args[1].(*moa.AttrRef)
		litSide = 0
		// flip the comparison: lit < path  ≡  path > lit
		fn = map[string]string{"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}[fn]
	}
	if !refOK || ref.Depth != 0 {
		return false
	}
	litRes := r.evalScalarNoScope(call.Args[litSide])
	if litRes == nil || !litRes.litLike() {
		return false
	}
	litArg := litRes.arg()

	if sc.CandIsExtent {
		if cand, ok := r.reversedSelect(sc, ref.Path, fn, litArg); ok {
			sc.Cand = cand
			sc.CandIsExtent = false
			return true
		}
	}
	// forward: navigate, then select on the value set
	v := r.navigate(sc, ref.Path)
	sc.Cand = r.emitSelect(v, fn, litArg)
	sc.CandIsExtent = false
	return true
}

// evalScalarNoScope evaluates a potential literal/scalar-subquery side
// without requiring the scope's element; returns nil if the expression needs
// the element (i.e. both sides vary).
func (r *rewriter) evalScalarNoScope(e moa.Expr) *scalarRes {
	switch x := e.(type) {
	case *moa.Lit:
		v := x.V
		return &scalarRes{Const: &v}
	case *moa.Call:
		if refsScope(e) {
			return nil
		}
		sr := r.evalScalar(x)
		return &sr
	}
	return nil
}

// refsScope reports whether the expression references any enclosing scope
// element (an AttrRef anywhere in the tree).
func refsScope(e moa.Expr) bool {
	switch x := e.(type) {
	case *moa.AttrRef:
		return true
	case *moa.Call:
		for _, a := range x.Args {
			if refsScope(a) {
				return true
			}
		}
		return false
	case *moa.Lit:
		return false
	case *moa.SelectExpr, *moa.ProjectExpr, *moa.NestExpr, *moa.UnnestExpr,
		*moa.JoinExpr, *moa.SortExpr, *moa.TopExpr, *moa.SetOpExpr, *moa.ClassExtent:
		// set subexpressions: conservatively treat selects/projections as
		// potentially scoped only if they contain depth>0 refs; for the
		// fast-path decision, treat them as independent (class-extent
		// rooted subqueries are the TPC-D shape).
		return false
	}
	return true
}

// reversedSelect implements the paper's extent-first strategy: select the
// qualifying target objects on their attribute BAT, then join backwards
// through the reference chain to the scope's class (Fig. 10: orders :=
// select(Order_clerk, …); items := join(Item_order, orders)). Only works
// when every step is an object-reference attribute.
func (r *rewriter) reversedSelect(sc *SetRep, path []string, fn string, lit mil.StmtArg) (string, bool) {
	obj, ok := sc.Elem.(ObjElem)
	if !ok {
		return "", false
	}
	// resolve the class chain
	classes := make([]string, len(path)) // class owning path[i]
	cls := obj.Class
	for i, attr := range path {
		classes[i] = cls
		t, ok := r.schema.AttrType(moa.ObjectType{Class: cls}, attr)
		if !ok {
			return "", false
		}
		if i == len(path)-1 {
			if _, isSet := t.(moa.SetType); isSet {
				return "", false
			}
			break
		}
		ot, isRef := t.(moa.ObjectType)
		if !isRef {
			return "", false
		}
		cls = ot.Class
	}
	last := len(path) - 1
	sel := r.emitSelect(moa.AttrBAT(classes[last], path[last]), fn, lit)
	for i := last - 1; i >= 0; i-- {
		sel = r.b.Emit("sel", mil.Stmt{Op: mil.OpJoin,
			Args: []mil.StmtArg{mil.VarArg(moa.AttrBAT(classes[i], path[i])), mil.VarArg(sel)}})
	}
	return sel, true
}

// emitSelect emits the point/range select for comparison fn against lit.
func (r *rewriter) emitSelect(v string, fn string, lit mil.StmtArg) string {
	switch fn {
	case "=":
		return r.b.Emit("sel", mil.Stmt{Op: mil.OpSelect,
			Args: []mil.StmtArg{mil.VarArg(v), lit}})
	case "<":
		return r.b.Emit("sel", mil.Stmt{Op: mil.OpSelectRange,
			Args: []mil.StmtArg{mil.VarArg(v), mil.None(), lit}, HiIncl: false})
	case "<=":
		return r.b.Emit("sel", mil.Stmt{Op: mil.OpSelectRange,
			Args: []mil.StmtArg{mil.VarArg(v), mil.None(), lit}, HiIncl: true})
	case ">":
		return r.b.Emit("sel", mil.Stmt{Op: mil.OpSelectRange,
			Args: []mil.StmtArg{mil.VarArg(v), lit, mil.None()}, LoIncl: false})
	case ">=":
		return r.b.Emit("sel", mil.Stmt{Op: mil.OpSelectRange,
			Args: []mil.StmtArg{mil.VarArg(v), lit, mil.None()}, LoIncl: true})
	}
	r.fail("unsupported comparison %q", fn)
	return ""
}

// applyGenericPred evaluates an arbitrary boolean expression over the
// candidate and keeps the true rows: the fully general (if less efficient)
// translation used for disjunctions and attribute-to-attribute comparisons.
func (r *rewriter) applyGenericPred(sc *SetRep, p moa.Expr) {
	sr := r.evalScalar(p)
	if sr.Var == "" {
		r.fail("selection predicate %s does not vary per element", p)
	}
	sc.Cand = r.b.Emit("sel", mil.Stmt{Op: mil.OpSelectBit,
		Args: []mil.StmtArg{mil.VarArg(sr.Var)}})
	sc.CandIsExtent = false
}
