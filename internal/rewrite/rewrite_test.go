package rewrite

import (
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/mil"
	"repro/internal/moa"
	"repro/internal/tpcd"
)

// run translates and executes a MOA query against a loaded database.
func run(t *testing.T, env mil.Env, src string) (*moa.SetVal, *Result) {
	t.Helper()
	e, err := moa.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ck, err := moa.Check(tpcd.Schema(), e)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := Translate(ck)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	ctx := &mil.Ctx{}
	if _, err := mil.Run(ctx, res.Prog, env); err != nil {
		t.Fatalf("run: %v\nprogram:\n%s", err, res.Prog)
	}
	out, err := moa.Materialize(env, res.Struct)
	if err != nil {
		t.Fatalf("materialize: %v\nstruct: %s", err, res.Struct.Render())
	}
	return out, res
}

var testDB = tpcd.Generate(0.002, 42)

func testEnv(t *testing.T) mil.Env {
	env, _ := tpcd.Load(testDB)
	return env
}

func TestQ13PipelineEndToEnd(t *testing.T) {
	db := testDB
	env := testEnv(t)

	// find a clerk that actually has returned items
	clerk := ""
	for _, o := range db.Orders {
		for _, it := range o.Items {
			if db.Items[it].Returnflag == 'R' {
				clerk = o.Clerk
			}
		}
		if clerk != "" {
			break
		}
	}
	if clerk == "" {
		t.Skip("no returned items in generated data")
	}

	src := `
project[<date : year, sum(project[revenue](%2)) : loss>](
  nest[date](
    project[<year(order.orderdate) : date,
             *(extendedprice, -(1.0, discount)) : revenue>](
      select[=(order.clerk, "` + clerk + `"), =(returnflag, 'R')](Item))))`

	out, _ := run(t, env, src)

	// reference: direct evaluation over the object graph
	want := map[int64]float64{}
	for _, it := range db.Items {
		if it.Returnflag != 'R' || db.Orders[it.Order].Clerk != clerk {
			continue
		}
		year := yearOf(int64(db.Orders[it.Order].Orderdate))
		want[year] += it.Extendedprice * (1 - it.Discount)
	}
	if len(out.Elems) != len(want) {
		t.Fatalf("groups = %d, want %d", len(out.Elems), len(want))
	}
	for _, e := range out.Elems {
		tv := e.V.(*moa.TupleVal)
		year := tv.Fields[0].(bat.Value).I
		loss := tv.Fields[1].(bat.Value).F
		if w, ok := want[year]; !ok || !close2(loss, w) {
			t.Fatalf("year %d loss %v, want %v", year, loss, want[year])
		}
	}
}

// yearOf extracts the calendar year of a day-number date via the same
// conversion the kernel's [year] multiplex uses.
func yearOf(days int64) int64 {
	return mil.CallFunc("year", []bat.Value{bat.D(int32(days))}).I
}

func close2(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}

func TestQ13PlanShape(t *testing.T) {
	env := testEnv(t)
	src := `
project[<date : year, sum(project[revenue](%2)) : loss>](
  nest[date](
    project[<year(order.orderdate) : date,
             *(extendedprice, -(1.0, discount)) : revenue>](
      select[=(order.clerk, "Clerk#000000001"), =(returnflag, 'R')](Item))))`
	e, err := moa.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := moa.Check(tpcd.Schema(), e)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(ck)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Prog.String()
	// The Fig. 5 / Fig. 10 structure: selection phase first (select on
	// Order_clerk, join back through Item_order, semijoin + select on
	// returnflag), then grouping, multiplexed computation, aggregation.
	mustContain := []string{
		`select(Order_clerk, "Clerk#000000001")`,
		`join(Item_order`,
		`semijoin(Item_returnflag`,
		`'R'`,
		`group(`,
		`[year](`,
		`[-](1, `,
		`[*](`,
		`{sum}(`,
	}
	for _, m := range mustContain {
		if !strings.Contains(plan, m) {
			t.Errorf("plan missing %q:\n%s", m, plan)
		}
	}
	order := []string{"select(Order_clerk", "semijoin(Item_returnflag", "group(", "{sum}("}
	last := -1
	for _, m := range order {
		i := strings.Index(plan, m)
		if i < last {
			t.Errorf("plan phase order wrong: %q appears before previous phase\n%s", m, plan)
		}
		last = i
	}
	if !strings.HasPrefix(res.Struct.Render(), "SET(") {
		t.Errorf("structure = %s", res.Struct.Render())
	}
	_ = env
}
