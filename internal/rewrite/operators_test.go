package rewrite

import (
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/moa"
	"repro/internal/tpcd"
)

// Per-operator translation tests: each MOA operation executed through the
// rewriter is checked against a brute-force evaluation over the generated
// object graph.

func elemsOf(out *moa.SetVal) int { return len(out.Elems) }

func TestSelectTranslations(t *testing.T) {
	db := testDB
	env := testEnv(t)

	cases := []struct {
		name string
		src  string
		want func() int
	}{
		{"point on attribute", `select[=(returnflag, 'R')](Item)`, func() int {
			n := 0
			for _, it := range db.Items {
				if it.Returnflag == 'R' {
					n++
				}
			}
			return n
		}},
		{"range on attribute", `select[>=(quantity, 10), <(quantity, 20)](Item)`, func() int {
			n := 0
			for _, it := range db.Items {
				if it.Quantity >= 10 && it.Quantity < 20 {
					n++
				}
			}
			return n
		}},
		{"reversed path (extent-first)", `select[=(order.clerk, "` + db.Clerk() + `")](Item)`, func() int {
			n := 0
			for _, it := range db.Items {
				if db.Orders[it.Order].Clerk == db.Clerk() {
					n++
				}
			}
			return n
		}},
		{"three-hop path", `select[=(order.cust.nation.name, "FRANCE")](Item)`, func() int {
			n := 0
			for _, it := range db.Items {
				if db.Nations[db.Customers[db.Orders[it.Order].Cust].Nation].Name == "FRANCE" {
					n++
				}
			}
			return n
		}},
		{"attr-to-attr comparison", `select[<(commitdate, receiptdate)](Item)`, func() int {
			n := 0
			for _, it := range db.Items {
				if it.Commitdate < it.Receiptdate {
					n++
				}
			}
			return n
		}},
		{"disjunction", `select[or(=(returnflag, 'R'), =(linestatus, 'O'))](Item)`, func() int {
			n := 0
			for _, it := range db.Items {
				if it.Returnflag == 'R' || it.Linestatus == 'O' {
					n++
				}
			}
			return n
		}},
		{"in-list", `select[in(shipmode, "MAIL", "SHIP")](Item)`, func() int {
			n := 0
			for _, it := range db.Items {
				if it.Shipmode == "MAIL" || it.Shipmode == "SHIP" {
					n++
				}
			}
			return n
		}},
		{"literal-first comparison flips", `select[>(3, quantity)](Item)`, func() int {
			n := 0
			for _, it := range db.Items {
				if it.Quantity < 3 {
					n++
				}
			}
			return n
		}},
		{"exists over set attribute", `select[exists(select[<(quantity, 2)](item))](Order)`, func() int {
			n := 0
			for _, o := range db.Orders {
				for _, it := range o.Items {
					if db.Items[it].Quantity < 2 {
						n++
						break
					}
				}
			}
			return n
		}},
		{"arithmetic in predicate", `select[>(*(extendedprice, discount), 900.0)](Item)`, func() int {
			n := 0
			for _, it := range db.Items {
				if it.Extendedprice*it.Discount > 900.0 {
					n++
				}
			}
			return n
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			out, _ := run(t, env, c.src)
			if got, want := elemsOf(out), c.want(); got != want {
				t.Fatalf("%s: got %d, want %d", c.src, got, want)
			}
		})
	}
}

func TestProjectConstantField(t *testing.T) {
	env := testEnv(t)
	out, _ := run(t, env, `project[<1 : one, name : n>](Region)`)
	if elemsOf(out) != len(testDB.Regions) {
		t.Fatalf("regions = %d", elemsOf(out))
	}
	for _, e := range out.Elems {
		tv := e.V.(*moa.TupleVal)
		if tv.Fields[0].(bat.Value).I != 1 {
			t.Fatalf("constant field = %s", moa.RenderVal(tv.Fields[0]))
		}
	}
}

func TestNestMultiKeyCounts(t *testing.T) {
	db := testDB
	env := testEnv(t)
	out, _ := run(t, env, `
		project[<returnflag : rf, linestatus : ls, count(%3) : n>](
		  nest[returnflag, linestatus](
		    project[<returnflag : returnflag, linestatus : linestatus>](Item)))`)
	want := map[[2]byte]int64{}
	for _, it := range db.Items {
		want[[2]byte{it.Returnflag, it.Linestatus}]++
	}
	if elemsOf(out) != len(want) {
		t.Fatalf("groups = %d, want %d", elemsOf(out), len(want))
	}
	for _, e := range out.Elems {
		tv := e.V.(*moa.TupleVal)
		k := [2]byte{byte(tv.Fields[0].(bat.Value).I), byte(tv.Fields[1].(bat.Value).I)}
		if got := tv.Fields[2].(bat.Value).I; got != want[k] {
			t.Fatalf("group %q count = %d, want %d", k, got, want[k])
		}
	}
}

func TestUnnestCardinality(t *testing.T) {
	env := testEnv(t)
	out, _ := run(t, env, `unnest[supplies](Supplier)`)
	if elemsOf(out) != len(testDB.Supplies) {
		t.Fatalf("unnested = %d, want %d", elemsOf(out), len(testDB.Supplies))
	}
}

func TestSetOperations(t *testing.T) {
	db := testDB
	env := testEnv(t)
	countFlag := func(f byte) int {
		n := 0
		for _, it := range db.Items {
			if it.Returnflag == f {
				n++
			}
		}
		return n
	}
	out, _ := run(t, env, `union(select[=(returnflag, 'R')](Item), select[=(returnflag, 'A')](Item))`)
	if got, want := elemsOf(out), countFlag('R')+countFlag('A'); got != want {
		t.Fatalf("union = %d, want %d", got, want)
	}
	out, _ = run(t, env, `difference(select[=(returnflag, 'R')](Item), select[=(linestatus, 'F')](Item))`)
	wantDiff := 0
	for _, it := range db.Items {
		if it.Returnflag == 'R' && it.Linestatus != 'F' {
			wantDiff++
		}
	}
	if elemsOf(out) != wantDiff {
		t.Fatalf("difference = %d, want %d", elemsOf(out), wantDiff)
	}
	out, _ = run(t, env, `intersection(select[=(returnflag, 'R')](Item), select[=(linestatus, 'F')](Item))`)
	wantInt := 0
	for _, it := range db.Items {
		if it.Returnflag == 'R' && it.Linestatus == 'F' {
			wantInt++
		}
	}
	if elemsOf(out) != wantInt {
		t.Fatalf("intersection = %d, want %d", elemsOf(out), wantInt)
	}
}

func TestSortAndTopOrder(t *testing.T) {
	env := testEnv(t)
	out, _ := run(t, env, `top[5](sort[acctbal desc](project[<acctbal : acctbal>](Supplier)))`)
	if elemsOf(out) != 5 {
		t.Fatalf("top = %d", elemsOf(out))
	}
	prev := 1e18
	for _, e := range out.Elems {
		v := e.V.(*moa.TupleVal).Fields[0].(bat.Value).F
		if v > prev {
			t.Fatalf("not descending")
		}
		prev = v
	}
	// ascending variant
	out, _ = run(t, env, `top[5](sort[acctbal](project[<acctbal : acctbal>](Supplier)))`)
	prev = -1e18
	for _, e := range out.Elems {
		v := e.V.(*moa.TupleVal).Fields[0].(bat.Value).F
		if v < prev {
			t.Fatalf("not ascending")
		}
		prev = v
	}
}

func TestGenericJoinPairs(t *testing.T) {
	db := testDB
	env := testEnv(t)
	// self-join items on shared order: pairs (i1, i2) with same order oid
	out, _ := run(t, env, `
		project[<%1.quantity : q1, %2.quantity : q2>](
		  join[=(%1.order, %2.order)](
		    select[=(returnflag, 'R')](Item),
		    select[=(returnflag, 'N')](Item)))`)
	want := 0
	for _, a := range db.Items {
		if a.Returnflag != 'R' {
			continue
		}
		for _, bIt := range db.Items {
			if bIt.Returnflag == 'N' && a.Order == bIt.Order {
				want++
			}
		}
	}
	if elemsOf(out) != want {
		t.Fatalf("join pairs = %d, want %d", elemsOf(out), want)
	}
}

func TestSemijoinOperator(t *testing.T) {
	db := testDB
	env := testEnv(t)
	// suppliers that supply some part of size 15
	out, _ := run(t, env, `
		semijoin[=(%1.name, %2.owner.name)](
		  Supplier,
		  select[=(part.size, 15)](unnest[supplies](Supplier)))`)
	want := map[int32]bool{}
	for _, sp := range db.Supplies {
		if db.Parts[sp.Part].Size == 15 {
			want[sp.Supplier] = true
		}
	}
	if elemsOf(out) != len(want) {
		t.Fatalf("semijoin = %d, want %d", elemsOf(out), len(want))
	}
}

func TestScalarAggregatesTopLevel(t *testing.T) {
	db := testDB
	env := testEnv(t)
	for _, c := range []struct {
		src  string
		want float64
	}{
		{`sum(project[extendedprice](Item))`, sumPrices(db)},
		{`min(project[extendedprice](Item))`, minPrice(db)},
		{`max(project[extendedprice](Item))`, maxPrice(db)},
		{`avg(project[extendedprice](Item))`, sumPrices(db) / float64(len(db.Items))},
	} {
		out, _ := run(t, env, c.src)
		if len(out.Elems) != 1 {
			t.Fatalf("%s: %d elems", c.src, len(out.Elems))
		}
		got := out.Elems[0].V.(bat.Value).AsFloat()
		if !close2(got, c.want) && (got-c.want > 1e-3 || c.want-got > 1e-3) {
			t.Fatalf("%s = %v, want %v", c.src, got, c.want)
		}
	}
	out, _ := run(t, env, `count(Item)`)
	if got := out.Elems[0].V.(bat.Value).I; got != int64(len(db.Items)) {
		t.Fatalf("count = %d", got)
	}
}

func sumPrices(db *tpcd.DB) float64 {
	s := 0.0
	for _, it := range db.Items {
		s += it.Extendedprice
	}
	return s
}

func minPrice(db *tpcd.DB) float64 {
	m := 1e18
	for _, it := range db.Items {
		if it.Extendedprice < m {
			m = it.Extendedprice
		}
	}
	return m
}

func maxPrice(db *tpcd.DB) float64 {
	m := -1e18
	for _, it := range db.Items {
		if it.Extendedprice > m {
			m = it.Extendedprice
		}
	}
	return m
}

func TestNestedSetProjectionSection432(t *testing.T) {
	db := testDB
	env := testEnv(t)
	out, _ := run(t, env, `
		project[<name : name, select[<(available, 500)](supplies) : low>](Supplier)`)
	// owners with a non-empty qualifying subset
	want := 0
	for _, s := range db.Suppliers {
		for j := s.SuppliesLo; j < s.SuppliesHi; j++ {
			if db.Supplies[j].Available < 500 {
				want++
				break
			}
		}
	}
	got := 0
	for _, e := range out.Elems {
		tv := e.V.(*moa.TupleVal)
		if set, ok := tv.Fields[1].(*moa.SetVal); ok && len(set.Elems) > 0 {
			got++
		}
	}
	if got != want {
		t.Fatalf("suppliers with low stock = %d, want %d", got, want)
	}
}

// Unsupported constructs must fail with errors, never panic.
func TestTranslateErrors(t *testing.T) {
	srcs := []string{
		`select[=(supplies, 1)](Supplier)`,              // set-valued attr in scalar position (checker)
		`nest[name](Supplier)`,                          // nest over objects (checker)
		`join[<(%1.quantity, %2.quantity)](Item, Item)`, // non-equality join pred (rewriter)
		`join[=(%1.quantity, 5)](Item, Item)`,           // join pred vs literal (rewriter)
		`sort[1](Item)`,                                 // constant sort key (rewriter)
		`nest[q](project[<quantity : q, select[<(available, 1)](supplies) : s>](x))`, // parse/check fails on x
	}
	for _, src := range srcs {
		e, err := moa.Parse(src)
		if err != nil {
			continue
		}
		ck, err := moa.Check(tpcd.Schema(), e)
		if err != nil {
			continue
		}
		if _, err := Translate(ck); err == nil {
			t.Errorf("%q: expected translation error", src)
		} else if !strings.Contains(err.Error(), "rewrite:") {
			t.Errorf("%q: error %v should be a rewrite error", src, err)
		}
	}
}

func TestAlignmentSkipsRedundantSemijoins(t *testing.T) {
	env := testEnv(t)
	// Q1-style: after projecting fields under one candidate, aggregating
	// them per group must not re-restrict each field again.
	e, err := moa.Parse(`
		project[<rf : rf, sum(project[q](%2)) : s>](
		  nest[rf](
		    project[<returnflag : rf, quantity : q>](Item)))`)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := moa.Check(tpcd.Schema(), e)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(ck)
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Prog.String()
	// count semijoins against the quantity value set: exactly one initial
	// restriction; the aggregate path must reuse it
	n := strings.Count(plan, "semijoin(")
	if n > 4 {
		t.Fatalf("plan has %d semijoins; alignment tracking regressed:\n%s", n, plan)
	}
	_ = env
}
