// Package rewrite implements the MOA→MIL term rewriter of Boncz, Wilschut &
// Kersten (ICDE 1998), Section 4.3: "For each operation in MOA, a
// transformation rule for the translation of the operation into a MIL
// program and structure function is generated. The MOA implementation
// consists of a straightforward term rewriter."
//
// Every set-typed MOA expression translates to a SetRep: a candidate BAT
// variable whose head column enumerates the element identifiers, plus a
// description of how the elements' values are reached (ElemRep). Translating
// an operation emits MIL statements against the builder and produces a new
// SetRep; the driver finally wraps the result representation into a
// structure function (Fig. 6), establishing
//
//	S_Y(mil(X1,…,Xn)) = moa(X).
package rewrite

import (
	"fmt"

	"repro/internal/mil"
	"repro/internal/moa"
)

// Result is a translated query: a MIL program plus the structure function
// interpreting the program's result variables, per Fig. 6.
type Result struct {
	Prog   *mil.Program
	Struct moa.Struct
	Type   moa.Type
}

// Translate rewrites a checked MOA query into a MIL program and result
// structure function.
func Translate(ck *moa.Checked) (res *Result, err error) {
	r := &rewriter{ck: ck, schema: ck.Schema, b: mil.NewBuilder()}
	defer func() {
		if p := recover(); p != nil {
			if te, ok := p.(translateError); ok {
				err = error(te.err)
				return
			}
			panic(p)
		}
	}()

	var st moa.Struct
	if _, isSet := ck.TypeOf(ck.Root).(moa.SetType); isSet {
		sres := r.evalSet(ck.Root)
		// The result index lists the element ids in its tail, like the
		// paper's INDEX[void,oid]; the candidate carries them in its head,
		// so the index is its (free) mirror.
		idx := r.b.Emit("INDEX", mil.Stmt{Op: mil.OpMirror,
			Args: []mil.StmtArg{mil.VarArg(sres.rep.Cand)}})
		st = moa.SetFn{Index: idx, Elem: r.structOf(sres.rep.Elem)}
	} else {
		// top-level scalar aggregate (Q6-style)
		sr := r.evalScalar(ck.Root)
		v := sr.ScalarVar
		if v == "" {
			r.fail("top-level expression must be a set or scalar aggregate")
		}
		st = moa.SetFn{Index: "", Elem: moa.AtomFn{Var: v}}
	}
	for _, v := range structVars(st) {
		r.b.KeepVar(v)
	}
	return &Result{Prog: r.b.Program(), Struct: st, Type: ck.TypeOf(ck.Root)}, nil
}

// translateError carries a translation failure through the recursive
// rewriter without threading error returns through every rule.
type translateError struct{ err error }

type rewriter struct {
	ck     *moa.Checked
	schema *moa.Schema
	b      *mil.Builder
	scopes []*SetRep // innermost last
}

func (r *rewriter) fail(format string, args ...interface{}) {
	panic(translateError{fmt.Errorf("rewrite: "+format, args...)})
}

func (r *rewriter) scope(depth int) *SetRep {
	i := len(r.scopes) - 1 - depth
	if i < 0 {
		r.fail("reference escapes %d scopes, only %d open", depth, len(r.scopes))
	}
	return r.scopes[i]
}

func (r *rewriter) push(s *SetRep) { r.scopes = append(r.scopes, s) }
func (r *rewriter) pop()           { r.scopes = r.scopes[:len(r.scopes)-1] }

// SetRep is the flattened representation of a set-typed expression: Cand
// names a BAT whose head column enumerates the element identifiers; Elem
// describes how element values are obtained from those identifiers.
type SetRep struct {
	Cand string
	// CandIsExtent marks an untouched class extent, enabling the paper's
	// reversed first-conjunct strategy (select on the attribute BAT, then
	// join back — Fig. 10 lines 1-2).
	CandIsExtent bool
	Elem         ElemRep
}

// ElemRep describes the flattened representation of set elements.
type ElemRep interface{ elemRep() }

// ObjElem: elements are stored objects of Class, identified by their oids;
// attribute values live in the persistent attribute BATs.
type ObjElem struct{ Class string }

func (ObjElem) elemRep() {}

// AtomElem: a materialized identified value set [elemid, value] in Var.
// AlignedTo, when non-empty, names the candidate variable whose head set Var
// is already restricted to — letting accesses skip the (re-)restricting
// semijoin.
type AtomElem struct {
	Var       string
	AlignedTo string
}

func (AtomElem) elemRep() {}

// RefElem: like AtomElem but the values are oids referencing objects of
// Class (a projected object-valued field).
type RefElem struct {
	Var       string
	Class     string
	AlignedTo string
}

func (RefElem) elemRep() {}

// TupleElem: elements are tuples; every field representation is keyed by the
// same element identifiers.
type TupleElem struct {
	Names  []string
	Fields []ElemRep
}

func (TupleElem) elemRep() {}

// NestedSetElem: a set-valued field. Index names a BAT [elemid, subid]; the
// sub-elements are described by Elem, keyed by subid.
type NestedSetElem struct {
	Index string
	Elem  ElemRep
}

func (NestedSetElem) elemRep() {}

// IndirectElem: elements reached through an indirection BAT [elemid,
// baseid]; Elem is keyed by baseid. Produced by the generic join, whose
// pairs get fresh identities.
type IndirectElem struct {
	Via  string
	Elem ElemRep
}

func (IndirectElem) elemRep() {}

// setRes is the result of translating a set expression: its representation,
// plus — when the set is reached from an element of an enclosing scope
// (a set-valued attribute, the nested group of a nest) — the ownership index
// [owner elemid, member id] that per-owner aggregation needs.
type setRes struct {
	rep      *SetRep
	ownerIdx string
}

// --- set-expression translation ----------------------------------------------

func (r *rewriter) evalSet(e moa.Expr) setRes {
	switch x := e.(type) {
	case *moa.ClassExtent:
		return setRes{rep: &SetRep{
			Cand:         moa.ExtentBAT(x.Class),
			CandIsExtent: true,
			Elem:         ObjElem{Class: x.Class},
		}}

	case *moa.AttrRef:
		return r.evalSetPath(x)

	case *moa.SelectExpr:
		in := r.evalSet(x.In)
		sc := &SetRep{Cand: in.rep.Cand, CandIsExtent: in.rep.CandIsExtent, Elem: in.rep.Elem}
		r.push(sc)
		r.translatePreds(sc, x.Preds)
		r.pop()
		out := setRes{rep: &SetRep{Cand: sc.Cand, Elem: in.rep.Elem}}
		if in.ownerIdx != "" {
			// keep only (owner, member) pairs whose member survived:
			// mirror, semijoin on member ids, mirror back (mirrors are
			// free).
			m := r.b.Emit("m", mil.Stmt{Op: mil.OpMirror, Args: []mil.StmtArg{mil.VarArg(in.ownerIdx)}})
			m2 := r.b.Emit("own", mil.Stmt{Op: mil.OpSemijoin, Args: []mil.StmtArg{mil.VarArg(m), mil.VarArg(sc.Cand)}})
			out.ownerIdx = r.b.Emit("own", mil.Stmt{Op: mil.OpMirror, Args: []mil.StmtArg{mil.VarArg(m2)}})
		}
		return out

	case *moa.ProjectExpr:
		in := r.evalSet(x.In)
		r.push(in.rep)
		fields := make([]ElemRep, len(x.Items))
		names := make([]string, len(x.Items))
		for i, it := range x.Items {
			names[i] = it.Name
			fields[i] = r.evalField(in.rep, it.E)
		}
		r.pop()
		var elem ElemRep
		if x.Tuple {
			elem = TupleElem{Names: names, Fields: fields}
		} else {
			elem = fields[0]
		}
		return setRes{
			rep:      &SetRep{Cand: in.rep.Cand, Elem: elem},
			ownerIdx: in.ownerIdx,
		}

	case *moa.NestExpr:
		return r.evalNest(x)

	case *moa.UnnestExpr:
		return r.evalUnnest(x)

	case *moa.JoinExpr:
		return r.evalJoin(x)

	case *moa.SortExpr:
		in := r.evalSet(x.In)
		r.push(in.rep)
		key := r.evalScalar(x.Key)
		r.pop()
		if key.Var == "" {
			r.fail("sort key must vary per element")
		}
		sorted := r.b.Emit("sorted", mil.Stmt{Op: mil.OpSort, Desc: x.Desc,
			Args: []mil.StmtArg{mil.VarArg(key.Var)}})
		return setRes{rep: &SetRep{Cand: sorted, Elem: in.rep.Elem}, ownerIdx: in.ownerIdx}

	case *moa.TopExpr:
		in := r.evalSet(x.In)
		cand := r.b.Emit("top", mil.Stmt{Op: mil.OpSlice, N: x.N,
			Args: []mil.StmtArg{mil.VarArg(in.rep.Cand)}})
		return setRes{rep: &SetRep{Cand: cand, Elem: in.rep.Elem}, ownerIdx: in.ownerIdx}

	case *moa.SetOpExpr:
		return r.evalSetOp(x)
	}
	r.fail("unsupported set expression %T", e)
	return setRes{}
}

// evalField translates one projection item: a scalar expression becomes an
// AtomElem (or RefElem), a set expression a NestedSetElem.
func (r *rewriter) evalField(sc *SetRep, e moa.Expr) ElemRep {
	if _, isSet := r.ck.TypeOf(e).(moa.SetType); isSet {
		res := r.evalSet(e)
		if res.ownerIdx == "" {
			r.fail("projected set %s is not reached from the element in scope", e)
		}
		return NestedSetElem{Index: res.ownerIdx, Elem: res.rep.Elem}
	}
	sr := r.evalScalar(e)
	v := sr.Var
	if v == "" {
		// constant or scalar-subquery field: lift over the candidate
		args := []mil.StmtArg{mil.VarArg(sc.Cand), sr.arg()}
		v = r.b.Emit("const", mil.Stmt{Op: mil.OpMultiplex, Fn: "snd", Args: args})
	}
	if ot, ok := r.ck.TypeOf(e).(moa.ObjectType); ok {
		return RefElem{Var: v, Class: ot.Class, AlignedTo: sc.Cand}
	}
	return AtomElem{Var: v, AlignedTo: sc.Cand}
}

// evalNest translates nest[k1,…,kn](S) via group / binary group refinement
// (Fig. 4, Fig. 5 "Grouping" phase).
func (r *rewriter) evalNest(x *moa.NestExpr) setRes {
	in := r.evalSet(x.In)
	if in.ownerIdx != "" {
		r.fail("nest of a nested set-valued attribute is not supported")
	}
	tuple, ok := in.rep.Elem.(TupleElem)
	if !ok {
		r.fail("nest requires a set of tuples")
	}
	r.push(in.rep)
	keyVars := make([]string, len(x.Keys))
	for i, k := range x.Keys {
		sr := r.evalScalar(k)
		if sr.Var == "" {
			r.fail("nest key must vary per element")
		}
		keyVars[i] = sr.Var
	}
	r.pop()

	grp := r.b.Emit("class", mil.Stmt{Op: mil.OpGroup, Args: []mil.StmtArg{mil.VarArg(keyVars[0])}})
	for _, kv := range keyVars[1:] {
		grp = r.b.Emit("class", mil.Stmt{Op: mil.OpGroup2,
			Args: []mil.StmtArg{mil.VarArg(grp), mil.VarArg(kv)}})
	}
	grpMirror := r.b.Emit("index", mil.Stmt{Op: mil.OpMirror, Args: []mil.StmtArg{mil.VarArg(grp)}})

	// one representative key value per group: join(class.mirror, key).unique
	names := make([]string, 0, len(x.Keys)+1)
	fields := make([]ElemRep, 0, len(x.Keys)+1)
	var cand string
	for i, kv := range keyVars {
		j := r.b.Emit("gk", mil.Stmt{Op: mil.OpJoin,
			Args: []mil.StmtArg{mil.VarArg(grpMirror), mil.VarArg(kv)}})
		u := r.b.Emit("KEY", mil.Stmt{Op: mil.OpUnique, Args: []mil.StmtArg{mil.VarArg(j)}})
		ref := x.Keys[i].(*moa.AttrRef)
		names = append(names, ref.Path[len(ref.Path)-1])
		// Object-valued keys stay navigable after grouping (Q3/Q10 fetch
		// o.orderdate from the grouped order).
		if ot, isRef := r.ck.TypeOf(x.Keys[i]).(moa.ObjectType); isRef {
			fields = append(fields, RefElem{Var: u, Class: ot.Class})
		} else {
			fields = append(fields, AtomElem{Var: u})
		}
		if cand == "" {
			cand = u
		}
	}
	// Every key value set carries exactly the group ids: aligned to cand.
	for i := range fields {
		switch f := fields[i].(type) {
		case AtomElem:
			f.AlignedTo = cand
			fields[i] = f
		case RefElem:
			f.AlignedTo = cand
			fields[i] = f
		}
	}
	names = append(names, moa.GroupField)
	fields = append(fields, NestedSetElem{Index: grpMirror, Elem: tuple})

	return setRes{rep: &SetRep{Cand: cand, Elem: TupleElem{Names: names, Fields: fields}}}
}

// evalUnnest translates unnest[attr](S) for S a set of objects with a
// set-valued attribute.
func (r *rewriter) evalUnnest(x *moa.UnnestExpr) setRes {
	in := r.evalSet(x.In)
	obj, ok := in.rep.Elem.(ObjElem)
	if !ok {
		r.fail("unnest requires a set of objects")
	}
	attrType, _ := r.schema.AttrType(moa.ObjectType{Class: obj.Class}, x.Attr)
	st, ok := attrType.(moa.SetType)
	if !ok {
		r.fail("unnest attribute %q is not set-valued", x.Attr)
	}
	idx := r.b.Emit("own", mil.Stmt{Op: mil.OpSemijoin,
		Args: []mil.StmtArg{mil.VarArg(moa.AttrBAT(obj.Class, x.Attr)), mil.VarArg(in.rep.Cand)}})
	cand := r.b.Emit("sub", mil.Stmt{Op: mil.OpMirror, Args: []mil.StmtArg{mil.VarArg(idx)}})

	names := []string{"owner"}
	fields := []ElemRep{RefElem{Var: cand, Class: obj.Class}}
	switch it := st.Elem.(type) {
	case moa.TupleType:
		for _, f := range it.Fields {
			names = append(names, f.Name)
			rep := r.nestedFieldRep(obj.Class, x.Attr, f)
			fields = append(fields, rep)
		}
	case moa.ObjectType:
		names = append(names, "value")
		fields = append(fields, RefElem{Var: cand, Class: it.Class})
	default:
		r.fail("unnest of a set of %s is not supported", st.Elem)
	}
	// Unnesting consumes ownership: the result's elements are the
	// sub-elements, the owner becomes an ordinary field. Only if the input
	// itself was reached from an enclosing scope does ownership propagate
	// (composed through the set index).
	ownerIdx := ""
	if in.ownerIdx != "" {
		ownerIdx = r.b.Emit("own", mil.Stmt{Op: mil.OpJoin,
			Args: []mil.StmtArg{mil.VarArg(in.ownerIdx), mil.VarArg(idx)}})
	}
	return setRes{rep: &SetRep{Cand: cand, Elem: TupleElem{Names: names, Fields: fields}}, ownerIdx: ownerIdx}
}

func (r *rewriter) nestedFieldRep(class, attr string, f moa.Field) ElemRep {
	v := moa.NestedBAT(class, attr, f.Name)
	if ot, ok := f.Type.(moa.ObjectType); ok {
		return RefElem{Var: v, Class: ot.Class}
	}
	return AtomElem{Var: v}
}

// evalJoin translates join[pred](A,B) / semijoin[pred](A,B). The predicate
// must be a conjunction of equalities between a path on %1 and a path on %2;
// these become composite hash-join keys.
func (r *rewriter) evalJoin(x *moa.JoinExpr) setRes {
	l := r.evalSet(x.L)
	rr := r.evalSet(x.R)

	var lPaths, rPaths []*moa.AttrRef
	var collect func(p moa.Expr)
	collect = func(p moa.Expr) {
		c, ok := p.(*moa.Call)
		if ok && c.Fn == "and" {
			for _, a := range c.Args {
				collect(a)
			}
			return
		}
		if !ok || c.Fn != "=" || len(c.Args) != 2 {
			r.fail("join predicate must be a conjunction of equalities, got %s", p)
		}
		a, aok := c.Args[0].(*moa.AttrRef)
		b, bok := c.Args[1].(*moa.AttrRef)
		if !aok || !bok || len(a.Path) < 2 || len(b.Path) < 2 {
			r.fail("join equality must compare %%1 and %%2 paths, got %s", p)
		}
		switch {
		case a.Path[0] == "$l" && b.Path[0] == "$r":
			lPaths, rPaths = append(lPaths, a), append(rPaths, b)
		case a.Path[0] == "$r" && b.Path[0] == "$l":
			lPaths, rPaths = append(lPaths, b), append(rPaths, a)
		default:
			r.fail("join equality must compare %%1 and %%2 paths, got %s", p)
		}
	}
	collect(x.Pred)

	keyVarsOn := func(sc *SetRep, paths []*moa.AttrRef) []string {
		r.push(sc)
		defer r.pop()
		out := make([]string, len(paths))
		for i, p := range paths {
			sr := r.evalScalar(&moa.AttrRef{Depth: 0, Path: p.Path[1:]})
			if sr.Var == "" {
				r.fail("join key must vary per element")
			}
			out[i] = sr.Var
		}
		return out
	}
	lKeys := keyVarsOn(l.rep, lPaths)
	rKeys := keyVarsOn(rr.rep, rPaths)

	pairs := r.b.Emit("pairs", mil.Stmt{Op: mil.OpJoinMulti, LKeys: lKeys, RKeys: rKeys})
	if x.Semi {
		cand := r.b.Emit("sel", mil.Stmt{Op: mil.OpSemijoin,
			Args: []mil.StmtArg{mil.VarArg(l.rep.Cand), mil.VarArg(pairs)}})
		return setRes{rep: &SetRep{Cand: cand, Elem: l.rep.Elem}}
	}
	pl := r.b.Emit("pl", mil.Stmt{Op: mil.OpMark, Args: []mil.StmtArg{mil.VarArg(pairs)}})
	pm := r.b.Emit("pm", mil.Stmt{Op: mil.OpMirror, Args: []mil.StmtArg{mil.VarArg(pairs)}})
	pr := r.b.Emit("pr", mil.Stmt{Op: mil.OpMark, Args: []mil.StmtArg{mil.VarArg(pm)}})
	elem := TupleElem{
		Names: []string{"$l", "$r"},
		Fields: []ElemRep{
			IndirectElem{Via: pl, Elem: l.rep.Elem},
			IndirectElem{Via: pr, Elem: rr.rep.Elem},
		},
	}
	return setRes{rep: &SetRep{Cand: pl, Elem: elem}}
}

func (r *rewriter) evalSetOp(x *moa.SetOpExpr) setRes {
	l := r.evalSet(x.L)
	rr := r.evalSet(x.R)
	sameElem := func(a, b ElemRep) bool {
		av, aok := a.(ObjElem)
		bv, bok := b.(ObjElem)
		if aok && bok {
			return av.Class == bv.Class
		}
		return false
	}
	op := map[string]string{"union": mil.OpUnion, "difference": mil.OpDiff, "intersection": mil.OpIntersect}[x.Op]
	args := []mil.StmtArg{mil.VarArg(l.rep.Cand), mil.VarArg(rr.rep.Cand)}
	switch {
	case sameElem(l.rep.Elem, rr.rep.Elem):
		cand := r.b.Emit(x.Op, mil.Stmt{Op: op, Args: args})
		return setRes{rep: &SetRep{Cand: cand, Elem: l.rep.Elem}}
	default:
		la, laok := l.rep.Elem.(AtomElem)
		ra, raok := rr.rep.Elem.(AtomElem)
		if !laok || !raok {
			r.fail("%s of structurally different sets is not supported", x.Op)
		}
		// merge the value sets restricted to their candidates
		lv := r.restrict(la.Var, l.rep.Cand)
		rv := r.restrict(ra.Var, rr.rep.Cand)
		out := r.b.Emit(x.Op, mil.Stmt{Op: op, Args: []mil.StmtArg{mil.VarArg(lv), mil.VarArg(rv)}})
		return setRes{rep: &SetRep{Cand: out, Elem: AtomElem{Var: out}}}
	}
}

// restrict produces var's IVS filtered to the candidate (a semijoin — free
// when they are already synced).
func (r *rewriter) restrict(v, cand string) string {
	if v == cand {
		return v
	}
	return r.b.Emit("sel", mil.Stmt{Op: mil.OpSemijoin,
		Args: []mil.StmtArg{mil.VarArg(v), mil.VarArg(cand)}})
}

// structVars collects the BAT variables a structure function references.
func structVars(s moa.Struct) []string {
	var out []string
	var walk func(moa.Struct)
	walk = func(s moa.Struct) {
		switch x := s.(type) {
		case moa.AtomFn:
			out = append(out, x.Var)
		case moa.TupleFn:
			for _, f := range x.Fields {
				walk(f)
			}
		case moa.SetFn:
			if x.Index != "" {
				out = append(out, x.Index)
			}
			walk(x.Elem)
		case moa.SimpleSetFn:
			out = append(out, x.Index)
		case moa.ViaFn:
			out = append(out, x.Via)
			walk(x.Elem)
		}
	}
	walk(s)
	return out
}
