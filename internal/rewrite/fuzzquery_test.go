package rewrite

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/tpcd"
)

// Randomized end-to-end correctness: generate random (valid) MOA selections
// over Item — mixing direct attributes, reference paths, comparisons,
// conjunction, disjunction and negation — and check that the flattened
// execution returns exactly the items a direct evaluation of the same
// predicate selects. This exercises the rewriter's fast paths (reversed
// extent-first selects, semijoin threading) and its generic boolean fallback
// against each other, since the same predicate may translate differently
// depending on syntactic position.

// pred is a generated predicate: MOA text plus its direct meaning.
type pred struct {
	moa  string
	eval func(db *tpcd.DB, it *tpcd.Item) bool
}

func genLeaf(rng *rand.Rand, db *tpcd.DB) pred {
	switch rng.Intn(7) {
	case 0:
		q := int64(1 + rng.Intn(50))
		op := []string{"<", "<=", ">", ">=", "="}[rng.Intn(5)]
		return pred{
			moa: fmt.Sprintf(`%s(quantity, %d)`, op, q),
			eval: func(_ *tpcd.DB, it *tpcd.Item) bool {
				return cmpInt(op, it.Quantity, q)
			},
		}
	case 1:
		f := []byte{'R', 'A', 'N'}[rng.Intn(3)]
		return pred{
			moa:  fmt.Sprintf(`=(returnflag, '%c')`, f),
			eval: func(_ *tpcd.DB, it *tpcd.Item) bool { return it.Returnflag == f },
		}
	case 2:
		m := []string{"MAIL", "SHIP", "AIR", "RAIL"}[rng.Intn(4)]
		return pred{
			moa:  fmt.Sprintf(`=(shipmode, "%s")`, m),
			eval: func(_ *tpcd.DB, it *tpcd.Item) bool { return it.Shipmode == m },
		}
	case 3:
		d := fmt.Sprintf("199%d-0%d-01", 2+rng.Intn(6), 1+rng.Intn(9))
		days := int32(bat.MustDate(d).I)
		op := []string{"<", ">="}[rng.Intn(2)]
		return pred{
			moa: fmt.Sprintf(`%s(shipdate, date("%s"))`, op, d),
			eval: func(_ *tpcd.DB, it *tpcd.Item) bool {
				return cmpInt(op, int64(it.Shipdate), int64(days))
			},
		}
	case 4:
		p := []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}[rng.Intn(5)]
		return pred{
			moa: fmt.Sprintf(`=(order.orderpriority, "%s")`, p),
			eval: func(db *tpcd.DB, it *tpcd.Item) bool {
				return db.Orders[it.Order].Orderpriority == p
			},
		}
	case 5:
		seg := []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}[rng.Intn(5)]
		return pred{
			moa: fmt.Sprintf(`=(order.cust.mktsegment, "%s")`, seg),
			eval: func(db *tpcd.DB, it *tpcd.Item) bool {
				return db.Customers[db.Orders[it.Order].Cust].Mktsegment == seg
			},
		}
	default:
		d := float64(rng.Intn(11)) / 100
		op := []string{"<=", ">="}[rng.Intn(2)]
		return pred{
			moa: fmt.Sprintf(`%s(discount, %.2f)`, op, d),
			eval: func(_ *tpcd.DB, it *tpcd.Item) bool {
				return cmpFlt(op, it.Discount, d)
			},
		}
	}
}

func genPred(rng *rand.Rand, db *tpcd.DB, depth int) pred {
	if depth <= 0 || rng.Intn(3) == 0 {
		return genLeaf(rng, db)
	}
	a := genPred(rng, db, depth-1)
	b := genPred(rng, db, depth-1)
	switch rng.Intn(3) {
	case 0:
		return pred{
			moa:  fmt.Sprintf(`and(%s, %s)`, a.moa, b.moa),
			eval: func(db *tpcd.DB, it *tpcd.Item) bool { return a.eval(db, it) && b.eval(db, it) },
		}
	case 1:
		return pred{
			moa:  fmt.Sprintf(`or(%s, %s)`, a.moa, b.moa),
			eval: func(db *tpcd.DB, it *tpcd.Item) bool { return a.eval(db, it) || b.eval(db, it) },
		}
	default:
		return pred{
			moa:  fmt.Sprintf(`not(%s)`, a.moa),
			eval: func(db *tpcd.DB, it *tpcd.Item) bool { return !a.eval(db, it) },
		}
	}
}

func cmpInt(op string, a, b int64) bool {
	switch op {
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	default:
		return a == b
	}
}

func cmpFlt(op string, a, b float64) bool {
	switch op {
	case "<=":
		return a <= b
	default:
		return a >= b
	}
}

func TestRandomSelectionsMatchDirectEvaluation(t *testing.T) {
	db := testDB
	env := testEnv(t)
	rng := rand.New(rand.NewSource(2026))

	trials := 120
	if testing.Short() {
		trials = 20
	}
	for trial := 0; trial < trials; trial++ {
		// one to three top-level conjuncts, each possibly compound
		k := 1 + rng.Intn(3)
		preds := make([]pred, k)
		texts := make([]string, k)
		for i := range preds {
			preds[i] = genPred(rng, db, rng.Intn(3))
			texts[i] = preds[i].moa
		}
		src := fmt.Sprintf(`select[%s](Item)`, strings.Join(texts, ", "))

		out, _ := run(t, env, src)

		want := map[bat.OID]bool{}
		for i := range db.Items {
			ok := true
			for _, p := range preds {
				if !p.eval(db, &db.Items[i]) {
					ok = false
					break
				}
			}
			if ok {
				want[bat.OID(i)] = true
			}
		}
		if len(out.Elems) != len(want) {
			t.Fatalf("trial %d: %s\ngot %d items, want %d",
				trial, src, len(out.Elems), len(want))
		}
		for _, e := range out.Elems {
			if !want[e.ID] {
				t.Fatalf("trial %d: %s\nitem %d selected but should not be", trial, src, e.ID)
			}
		}
	}
}

// The same random predicates nested one level deeper: selection inside a
// per-order exists() must agree with direct evaluation too.
func TestRandomExistsQueriesMatchDirectEvaluation(t *testing.T) {
	db := testDB
	env := testEnv(t)
	rng := rand.New(rand.NewSource(7))

	trials := 30
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		p := genLeaf(rng, db)
		// skip order-path leaves: inside the item scope of an Order they
		// are still valid but test the same path machinery twice
		if strings.Contains(p.moa, "order.") {
			continue
		}
		src := fmt.Sprintf(`select[exists(select[%s](item))](Order)`, p.moa)
		out, _ := run(t, env, src)
		want := 0
		for _, o := range db.Orders {
			for _, it := range o.Items {
				if p.eval(db, &db.Items[it]) {
					want++
					break
				}
			}
		}
		if len(out.Elems) != want {
			t.Fatalf("trial %d: %s\ngot %d orders, want %d", trial, src, len(out.Elems), want)
		}
	}
}
