package rewrite

import (
	"repro/internal/moa"
)

// structOf converts an element representation into a structure function over
// the program's (and the database's) BAT variables — the S_Y of Fig. 6.
//
// Objects materialize shallowly: atomic attributes in full, object
// references as oids, set-valued attributes of tuples in full, set-valued
// attributes of objects as oid sets (the SET(A) simple form). Shallow
// reference materialization keeps cyclic schemas (Order.item ↔ Item.order)
// finite.
func (r *rewriter) structOf(rep ElemRep) moa.Struct {
	switch el := rep.(type) {
	case AtomElem:
		return moa.AtomFn{Var: el.Var}
	case RefElem:
		return moa.AtomFn{Var: el.Var}
	case TupleElem:
		fields := make([]moa.Struct, len(el.Fields))
		for i, f := range el.Fields {
			fields[i] = r.structOf(f)
		}
		return moa.TupleFn{Names: el.Names, Fields: fields}
	case NestedSetElem:
		return moa.SetFn{Index: el.Index, Elem: r.structOf(el.Elem)}
	case IndirectElem:
		return moa.ViaFn{Via: el.Via, Elem: r.structOf(el.Elem)}
	case ObjElem:
		cls, ok := r.schema.Classes[el.Class]
		if !ok {
			r.fail("unknown class %q", el.Class)
		}
		names := make([]string, 0, len(cls.Attrs))
		fields := make([]moa.Struct, 0, len(cls.Attrs))
		for _, a := range cls.Attrs {
			names = append(names, a.Name)
			switch t := a.Type.(type) {
			case moa.BaseType, moa.ObjectType:
				fields = append(fields, moa.AtomFn{Var: moa.AttrBAT(cls.Name, a.Name)})
			case moa.SetType:
				switch it := t.Elem.(type) {
				case moa.TupleType:
					inNames := make([]string, len(it.Fields))
					inFields := make([]moa.Struct, len(it.Fields))
					for j, f := range it.Fields {
						inNames[j] = f.Name
						inFields[j] = moa.AtomFn{Var: moa.NestedBAT(cls.Name, a.Name, f.Name)}
					}
					fields = append(fields, moa.SetFn{
						Index: moa.AttrBAT(cls.Name, a.Name),
						Elem:  moa.TupleFn{Names: inNames, Fields: inFields},
					})
				default:
					// objects or atoms: SET(A) simple form
					fields = append(fields, moa.SimpleSetFn{Index: moa.AttrBAT(cls.Name, a.Name)})
				}
			default:
				r.fail("unsupported attribute type %s", a.Type)
			}
		}
		return moa.TupleFn{Names: names, Fields: fields, Object: true, Class: cls.Name}
	}
	r.fail("unknown element representation %T", rep)
	return nil
}
