# Tier-1 gate and benchmark tooling. See EXPERIMENTS.md for methodology.

GO ?= go

.PHONY: verify build vet test test-race bench bench-ablation bench-snapshot bench-compare

## verify: the tier-1 gate — build, vet, the full test suite, and the race
## detector over the parallel kernels (partitioned builds, parallel probes).
verify: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

## bench: the full benchmark sweep with allocation accounting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=3s .

## bench-ablation: just the kernel ablations (fast inner loop while tuning).
bench-ablation:
	$(GO) test -run '^$$' -bench 'BenchmarkAblation' -benchmem -benchtime=3s .

## bench-snapshot: machine-readable trajectory snapshot (test2json events
## carrying ns/op, B/op, allocs/op and the custom Figure 9/10 metrics).
## Writes the next BENCH_<n>.json in sequence; commit it so the perf
## trajectory stays diffable across PRs.
bench-snapshot:
	./scripts/bench.sh

## bench-compare: benchstat-style diff of the two most recent committed
## snapshots (falls back to a side-by-side table when benchstat is absent).
bench-compare:
	./scripts/bench_compare.sh
