# Tier-1 gate and benchmark tooling. See EXPERIMENTS.md for methodology.
# `make ci` mirrors .github/workflows/ci.yml locally.

GO ?= go

.PHONY: verify build vet test test-race chaos crash bench bench-ablation bench-smoke bench-snapshot bench-compare bench-gate server-smoke outofcore-smoke ci

## verify: the tier-1 gate — build, vet, the full test suite, and the race
## detector over the parallel kernels (partitioned builds, parallel probes,
## the morsel claim queue).
verify: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

## chaos: the query-lifecycle chaos suite under the race detector, repeated
## — concurrent sessions run the Figure-9 mix while injected storage faults,
## latency, cancellations and deadlines fire over a bounded seed list
## ({1,2,3} plus the no-injector cancellation run); survivors must be
## bit-identical to the sequential reference and fault/hit/gauge accounting
## must balance exactly at quiesce. Already part of `make test`/`test-race`
## once; this target reruns it with fresh schedules for flake hunting.
chaos:
	$(GO) test ./internal/server -race -count=2 \
		-run 'TestChaosQueryLifecycle|TestCancellationCleanliness|TestCancelMidBuildRebuildsOnce'

## crash: the durability crash-injection suite under the race detector —
## kill the process (simulated via in-test panic at six injection points:
## around the WAL fsync, the epoch swap, and the snapshot rename) and
## require recovery to land bit-identically on the pre- or post-ingest
## epoch, never a blend, with eight concurrent readers pinned across the
## kill at the swap point. CRASH_SEEDS=<s1>,<s2>,... overrides the default
## deterministic {1,2} seed list; CI runs this with fresh seeds per build.
crash:
	$(GO) test ./internal/epoch -race -count=1 \
		-run 'TestCrashMatrix|TestTornTail|TestConcurrentReadersAcrossCrash'

## bench: the full benchmark sweep with allocation accounting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=3s .

## bench-ablation: the kernel ablations and the server-throughput sweep
## (fast inner loop while tuning).
bench-ablation:
	$(GO) test -run '^$$' -bench 'BenchmarkAblation|BenchmarkServerThroughput|BenchmarkPagerConcurrent' -benchmem -benchtime=3s .

## bench-smoke: one iteration of every ablation and server-throughput
## variant — proves the bench harness itself still builds and runs (the CI
## bench job). No timing value.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkAblation|BenchmarkServerThroughput|BenchmarkPagerConcurrent' -benchmem -benchtime=1x .

## bench-snapshot: machine-readable trajectory snapshot (test2json events
## carrying ns/op, B/op, allocs/op and the custom Figure 9/10 metrics).
## Writes the next BENCH_<n>.json in sequence; commit it so the perf
## trajectory stays diffable across PRs.
bench-snapshot:
	./scripts/bench.sh

## bench-compare: benchstat-style diff of the two most recent committed
## snapshots (falls back to a side-by-side table when benchstat is absent).
bench-compare:
	./scripts/bench_compare.sh

## bench-gate: advisory perf regression gate — short ablation run diffed
## against the latest committed BENCH_<n>.json; fails on >25% ns/op
## regression in any ablation (tune with GATE_PCT / BENCHTIME).
bench-gate:
	./scripts/bench_gate.sh

## server-smoke: end-to-end proof of the concurrent query service — start
## moaserve, drive the closed-loop load generator at it over HTTP, require
## zero hard errors and a clean SIGTERM drain (the CI server job).
server-smoke:
	./scripts/server_smoke.sh

## outofcore-smoke: end-to-end proof of the out-of-core storage path —
## bulk load into an mmap-backed data directory, serve from the mapped
## heaps (real residency metrics nonzero), SIGKILL, restart by mapping the
## checkpoint, and require bit-identical answers; the portable -map-fallback
## path must agree on the same directory (the CI out-of-core job).
outofcore-smoke:
	./scripts/outofcore_smoke.sh

## ci: everything the CI workflow runs, reproducible without pushing.
## bench-gate stays advisory here too (the workflow runs it with
## continue-on-error): a red gate on a different host class is a prompt
## to re-measure, not a failure.
ci: verify chaos crash bench-smoke server-smoke outofcore-smoke
	-./scripts/bench_gate.sh
