# Tier-1 gate and benchmark tooling. See EXPERIMENTS.md for methodology.

GO ?= go

.PHONY: verify build vet test bench bench-ablation bench-snapshot

## verify: the tier-1 gate — build, vet, and the full test suite.
verify: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## bench: the full benchmark sweep with allocation accounting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime=3s .

## bench-ablation: just the kernel ablations (fast inner loop while tuning).
bench-ablation:
	$(GO) test -run '^$$' -bench 'BenchmarkAblation' -benchmem -benchtime=3s .

## bench-snapshot: machine-readable trajectory snapshot (test2json events
## carrying ns/op, B/op, allocs/op and the custom Figure 9/10 metrics).
bench-snapshot:
	./scripts/bench.sh
